// arams — command-line front end for the ARAMS monitoring library.
//
// Subcommands:
//   generate   synthesize a detector run into a .frames bundle
//   sketch     ARAMS-sketch a .frames bundle or .npy matrix into a .npy
//   pipeline   run the full monitoring pipeline; emit CSV and/or HTML
//   monitor    replay a run through the streaming monitor with live
//              telemetry, the health watchdog, and Prometheus snapshots
//   backends   list the registered sketching backends
//   doctor     parse and validate a post-mortem dump
//   info       describe a .frames or .npy file
//
// Examples:
//   arams generate --kind=beam --frames=500 --size=48 --out=run.frames
//   arams sketch --in=run.frames --ell=32 --epsilon=0.05 --out=sketch.npy
//   arams sketch --in=run.frames --sketcher=rangefinder --out=sketch.npy
//   arams monitor --in=run.frames --sketcher=fd --batch=64
//   arams pipeline --in=run.frames --html=run.html --csv=run.csv
//   arams pipeline --in=run.frames --knn-backend=rpforest
//   arams pipeline --in=run.frames --trace-out=trace.json
//       --metrics-out=metrics.jsonl
//   arams monitor --in=run.frames --batch=64 --prom-out=arams.prom
//       --health-log=health.jsonl
//   arams monitor --in=run.frames --postmortem-dir=dumps
//       --flight-recorder=flight.jsonl --profile-out=profile.folded
//   arams doctor dumps/postmortem-12345-0.txt
//   arams info --in=sketch.npy

#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "arams.hpp"

namespace {

using namespace arams;

void print_usage() {
  std::cout <<
      "usage: arams <command> [flags]\n"
      "\n"
      "commands:\n"
      "  generate   synthesize a run (--kind=beam|diffraction|speckle)\n"
      "  sketch     ARAMS-sketch frames/matrix into a .npy sketch\n"
      "  pipeline   full monitoring pipeline -> labels, CSV, HTML\n"
      "  monitor    replay a run through the streaming monitor: DAQ\n"
      "             queue, health watchdog, Prometheus snapshots\n"
      "  compare    covariance error of a sketch against its data\n"
      "  diag       beam diagnostics over a run: CUSUM alarms, frame\n"
      "             statistics, dead/hot pixel mask\n"
      "  backends   list the registered sketching backends (--sketcher=)\n"
      "             or, with --knn, the kNN searchers (--knn-backend=)\n"
      "  doctor     parse and validate a post-mortem dump\n"
      "  info       describe a .frames or .npy file\n"
      "\n"
      "run `arams <command> --help` for the command's flags.\n";
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Loads rows either from a .frames bundle (flattened) or a .npy matrix.
linalg::Matrix load_rows(const std::string& path) {
  if (ends_with(path, ".frames")) {
    return image::images_to_matrix(io::load_frames(path));
  }
  return io::load_npy(path);
}

/// fp32 twin of load_rows for the mixed-precision ingest lane: frames are
/// narrowed at the door, '<f4' .npy payloads never round-trip through fp64.
linalg::MatrixF load_rows_f32(const std::string& path) {
  if (ends_with(path, ".frames")) {
    const std::vector<image::ImageF> frames = io::load_frames(path);
    std::vector<image::ImageF32> narrowed;
    narrowed.reserve(frames.size());
    for (const image::ImageF& frame : frames) {
      narrowed.push_back(image::narrow(frame));
    }
    return image::images_to_matrix(narrowed);
  }
  return io::load_npy_f32(path);
}

void declare_ingest_flag(CliFlags& flags) {
  flags.declare("ingest-precision", "fp64",
                "frame ingest lane: fp64 (classic, bitwise-stable default) "
                "| fp32 (mixed precision: fp32 rows, fp64 accumulation)");
}

/// True for fp32; rejects anything other than the two lane names.
bool ingest_is_f32(const CliFlags& flags) {
  const std::string lane = flags.get("ingest-precision");
  if (lane == "fp32") return true;
  ARAMS_CHECK(lane == "fp64", "unknown --ingest-precision: " + lane);
  return false;
}

void declare_telemetry_flags(CliFlags& flags) {
  flags.declare("trace-out", "",
                "write a Chrome trace_event JSON of pipeline spans");
  flags.declare("metrics-out", "", "write telemetry metrics as JSON lines");
  flags.declare("prom-out", "",
                "write metrics in Prometheus text exposition format");
  flags.declare("flight-recorder", "",
                "enable the in-memory flight journal and write it as JSON "
                "lines at exit");
  flags.declare("postmortem-dir", "",
                "install crash handlers; dump post-mortems (crash or "
                "watchdog CRITICAL) into this directory");
  flags.declare("profile-out", "",
                "run the sampling profiler and write folded stacks "
                "(flamegraph.pl format) at exit");
}

/// The run-wide sampling profiler --profile-out starts (static so its
/// sampler thread outlives the subcommand scopes that poke it).
obs::SamplingProfiler& profiler() {
  static obs::SamplingProfiler instance;
  return instance;
}

/// kNN searcher flags, shared by the subcommands that build neighbour
/// graphs (`pipeline`, `monitor`). Backend names come from the
/// embed::make_searcher registry.
void declare_knn_flags(CliFlags& flags) {
  flags.declare("knn-backend", "auto",
                "kNN searcher: exact | rpforest | auto "
                "(see `arams backends --knn`)");
  flags.declare("knn-exact-threshold", "4096",
                "auto backend: largest point count still served by the "
                "exact searcher");
}

void apply_knn_flags(const CliFlags& flags, embed::UmapConfig& umap) {
  umap.knn.backend = flags.get("knn-backend");
  umap.knn.exact_threshold =
      static_cast<std::size_t>(flags.get_int("knn-exact-threshold"));
}

/// Span recording costs a little per stage, so it stays off unless the run
/// actually asked for a trace file. The same gate arms the forensics
/// layer: flight journal, crash handlers, sampling profiler.
void arm_telemetry(const CliFlags& flags) {
  if (!flags.get("trace-out").empty()) {
    obs::tracer().enable(true);
  }
  if (!flags.get("flight-recorder").empty()) {
    obs::flight_recorder().enable(true);
  }
  if (const std::string& dir = flags.get("postmortem-dir"); !dir.empty()) {
    obs::PostmortemConfig pm;
    pm.dir = dir;
    pm.autodump_on_critical = true;
    obs::configure_postmortem(pm);
    obs::install_postmortem_handlers();
    obs::refresh_postmortem_snapshot();
    // Crash forensics without the flight journal would be an empty tail.
    obs::flight_recorder().enable(true);
  }
  if (!flags.get("profile-out").empty()) {
    profiler().start();
  }
}

void write_telemetry(const CliFlags& flags,
                     const obs::HealthMonitor* health = nullptr) {
  // Stop the profiler first: stop() publishes the
  // profile.stage_cpu_fraction gauges, which the metrics/prom writers
  // below should include.
  if (const std::string& path = flags.get("profile-out"); !path.empty()) {
    profiler().stop();
    std::ofstream out(path);
    ARAMS_CHECK(out.good(), "cannot open --profile-out file: " + path);
    profiler().write_folded(out);
    std::cout << "folded profile (" << profiler().samples()
              << " samples) written to " << path << "\n";
  }
  if (const std::string& path = flags.get("flight-recorder");
      !path.empty()) {
    std::ofstream out(path);
    ARAMS_CHECK(out.good(), "cannot open --flight-recorder file: " + path);
    obs::flight_recorder().write_json_lines(out);
    std::cout << "flight journal ("
              << obs::flight_recorder().total_recorded()
              << " events recorded) written to " << path << "\n";
  }
  if (const std::string& path = flags.get("trace-out"); !path.empty()) {
    std::ofstream out(path);
    ARAMS_CHECK(out.good(), "cannot open --trace-out file: " + path);
    obs::tracer().write_chrome_trace(out);
    std::cout << "Chrome trace written to " << path << "\n";
  }
  if (const std::string& path = flags.get("metrics-out"); !path.empty()) {
    std::ofstream out(path);
    ARAMS_CHECK(out.good(), "cannot open --metrics-out file: " + path);
    obs::metrics().write_json_lines(out);
    std::cout << "metrics written to " << path << "\n";
  }
  if (const std::string& path = flags.get("prom-out"); !path.empty()) {
    std::ofstream out(path);
    ARAMS_CHECK(out.good(), "cannot open --prom-out file: " + path);
    obs::write_prometheus(out, obs::metrics(), health);
    std::cout << "Prometheus snapshot written to " << path << "\n";
  }
}

int cmd_generate(int argc, const char* const* argv) {
  CliFlags flags;
  flags.declare("kind", "beam", "beam | diffraction | speckle");
  flags.declare("frames", "500", "number of frames");
  flags.declare("size", "48", "frame height/width");
  flags.declare("classes", "4", "diffraction: latent classes");
  flags.declare("seed", "7", "generator seed");
  flags.declare("out", "run.frames", "output .frames bundle");
  flags.declare("truth", "", "optional CSV of generative ground truth");
  flags.declare("help", "false", "print usage");
  flags.parse(argc, argv);
  if (flags.get_bool("help")) {
    std::cout << flags.usage("arams generate");
    return 0;
  }
  const auto count = static_cast<std::size_t>(flags.get_int("frames"));
  const auto size = static_cast<std::size_t>(flags.get_int("size"));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const std::string kind = flags.get("kind");

  std::vector<image::ImageF> frames;
  frames.reserve(count);
  Table truth_table({"index", "factor1", "factor2", "label"});

  if (kind == "beam") {
    data::BeamProfileConfig config;
    config.height = size;
    config.width = size;
    Rng rng(seed);
    for (std::size_t i = 0; i < count; ++i) {
      auto sample = data::generate_beam_profile(config, rng);
      truth_table.add_row(
          {Table::num(static_cast<long>(i)),
           Table::num(sample.truth.com_x),
           Table::num(sample.truth.ellipticity),
           sample.truth.exotic ? "exotic" : "normal"});
      frames.push_back(std::move(sample.frame));
    }
  } else if (kind == "diffraction") {
    data::DiffractionConfig config;
    config.height = size;
    config.width = size;
    config.num_classes =
        static_cast<std::size_t>(flags.get_int("classes"));
    const data::DiffractionGenerator generator(config);
    Rng rng(seed);
    for (std::size_t i = 0; i < count; ++i) {
      auto sample = generator.generate(rng);
      truth_table.add_row(
          {Table::num(static_cast<long>(i)),
           Table::num(sample.truth.quadrant_weights[0]),
           Table::num(sample.truth.quadrant_weights[1]),
           Table::num(static_cast<long>(sample.truth.class_label))});
      frames.push_back(std::move(sample.frame));
    }
  } else if (kind == "speckle") {
    data::SpeckleConfig config;
    config.height = size;
    config.width = size;
    data::SpeckleGenerator generator(config, seed);
    for (std::size_t i = 0; i < count; ++i) {
      auto sample = generator.next();
      truth_table.add_row({Table::num(static_cast<long>(i)),
                           Table::num(sample.truth.realized_contrast),
                           Table::num(config.coherence_length), "speckle"});
      frames.push_back(std::move(sample.frame));
    }
  } else {
    ARAMS_CHECK(false, "unknown --kind: " + kind);
  }

  io::save_frames(flags.get("out"), frames);
  std::cout << "wrote " << count << " " << size << "x" << size << " "
            << kind << " frames to " << flags.get("out") << "\n";
  if (const std::string& truth = flags.get("truth"); !truth.empty()) {
    truth_table.save_csv(truth);
    std::cout << "ground truth written to " << truth << "\n";
  }
  return 0;
}

int cmd_sketch(int argc, const char* const* argv) {
  CliFlags flags;
  flags.declare("in", "", ".frames bundle or .npy matrix (required)");
  flags.declare("out", "sketch.npy", "output sketch .npy");
  flags.declare("sketcher", "arams",
                "backend: arams | fd | isvd | gaussian | countsketch | "
                "normsample | rangefinder | sharded:<inner> "
                "(see `arams backends`)");
  flags.declare("ell", "32", "initial/fixed sketch rank");
  flags.declare("seed", "2024", "sketcher RNG seed");
  flags.declare("shards", "1",
                "concurrent ingest shards (>1 wraps the backend in "
                "sharded:<backend>, pool tree-merged)");
  flags.declare("beta", "0.8", "arams: priority-sampling keep fraction");
  flags.declare("epsilon", "0.05",
                "arams: rank-adaptation target (0 disables RA)");
  flags.declare("estimator", "gaussian",
                "RA residual estimator: gaussian | hutchinson | hutchpp");
  flags.declare("report-error", "false",
                "also print the relative covariance error (costs extra)");
  declare_ingest_flag(flags);
  declare_telemetry_flags(flags);
  flags.declare("help", "false", "print usage");
  flags.parse(argc, argv);
  if (flags.get_bool("help")) {
    std::cout << flags.usage("arams sketch");
    return 0;
  }
  ARAMS_CHECK(!flags.get("in").empty(), "--in is required");
  arm_telemetry(flags);
  const bool f32 = ingest_is_f32(flags);
  linalg::Matrix rows;
  linalg::MatrixF rows_f32;
  if (f32) {
    rows_f32 = load_rows_f32(flags.get("in"));
  } else {
    rows = load_rows(flags.get("in"));
  }
  std::cout << "loaded " << (f32 ? rows_f32.rows() : rows.rows()) << " x "
            << (f32 ? rows_f32.cols() : rows.cols()) << " from "
            << flags.get("in") << (f32 ? " (fp32 ingest lane)" : "")
            << "\n";

  core::SketcherConfig config;
  config.backend = flags.get("sketcher");
  config.ell = static_cast<std::size_t>(flags.get_int("ell"));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const long shards_flag = flags.get_int("shards");
  ARAMS_CHECK(shards_flag >= 1,
              "--shards must be >= 1, got " + std::to_string(shards_flag));
  config.shards = static_cast<std::size_t>(shards_flag);
  config.arams.ell = config.ell;
  config.arams.seed = config.seed;
  config.arams.beta = flags.get_double("beta");
  config.arams.use_sampling = config.arams.beta < 1.0;
  const double epsilon = flags.get_double("epsilon");
  config.arams.rank_adaptive = epsilon > 0.0;
  config.arams.epsilon = epsilon;
  config.arams.estimator =
      linalg::parse_residual_estimator(flags.get("estimator"));

  linalg::Matrix sketch;
  std::size_t final_ell = 0;
  Stopwatch timer;
  if (f32) {
    // The fp32 lane always goes through the factory: every backend exposes
    // the same fp32 entry point there (native mixed precision for
    // arams/fd/gaussian/countsketch, the widening shim for the rest).
    const std::unique_ptr<core::Sketcher> sketcher =
        core::make_sketcher(config);
    sketcher->push_batch(linalg::MatrixViewF(rows_f32));
    sketch = sketcher->sketch();
    final_ell = sketcher->current_ell();
    std::cout << "sketched to " << sketch.rows() << " x " << sketch.cols()
              << " in " << timer.seconds() << " s (" << sketcher->name()
              << ", fp32 lane, " << sketcher->rows_ingested_f32()
              << " fp32 rows, ell " << final_ell << ")\n";
  } else if (config.backend == "arams" && config.shards <= 1) {
    // The paper path: Algorithm 3 verbatim through core::Arams, so the
    // default CLI invocation stays bitwise-identical to pre-factory runs.
    // (--shards>1 takes the factory branch: the sharded wrapper applies
    // to any backend, arams included.)
    core::Arams sketcher(config.arams);
    const core::AramsResult result = sketcher.sketch_matrix(rows);
    std::cout << "sketched to " << result.sketch.rows() << " x "
              << result.sketch.cols() << " in " << timer.seconds() << " s ("
              << result.report.counter("svd_count")
              << " rotations, final ell " << result.final_ell << ")\n";
    sketch = result.sketch;
    final_ell = result.final_ell;
  } else {
    const std::unique_ptr<core::Sketcher> sketcher =
        core::make_sketcher(config);
    sketcher->push_batch(rows);
    sketch = sketcher->sketch();
    final_ell = sketcher->current_ell();
    std::cout << "sketched to " << sketch.rows() << " x " << sketch.cols()
              << " in " << timer.seconds() << " s (" << sketcher->name()
              << ", " << sketcher->stats().svd_count
              << " rotations, ell " << final_ell << ")\n";
  }
  io::save_npy(flags.get("out"), sketch);
  std::cout << "sketch written to " << flags.get("out") << "\n";
  write_telemetry(flags);

  if (flags.get_bool("report-error")) {
    if (f32) linalg::widen(linalg::MatrixViewF(rows_f32), rows);
    Rng power(1);
    std::cout << "relative covariance error: "
              << linalg::covariance_error_relative(rows, sketch, power, 60)
              << " (FD bound "
              << 1.0 / static_cast<double>(final_ell) << ")\n";
  }
  return 0;
}

int cmd_pipeline(int argc, const char* const* argv) {
  CliFlags flags;
  flags.declare("in", "", ".frames bundle or .npy matrix (required)");
  flags.declare("sketcher", "arams",
                "sketch backend (see `arams backends`)");
  flags.declare("ell", "24", "sketch rank");
  flags.declare("cores", "4", "virtual sketching cores");
  flags.declare("shards", "1",
                "concurrent ingest shards (>1 runs stage 2 through "
                "sharded:<sketcher> on the shared pool)");
  flags.declare("components", "12", "PCA latent dimension");
  flags.declare("neighbors", "15", "UMAP n_neighbors");
  flags.declare("epochs", "200", "UMAP epochs");
  declare_knn_flags(flags);
  flags.declare("clusterer", "optics", "optics | hdbscan | kmeans");
  flags.declare("k", "4", "kmeans: number of clusters");
  flags.declare("center", "true", "CoM-center frames before sketching");
  flags.declare("csv", "", "output CSV (x,y,label per shot)");
  flags.declare("html", "", "output interactive HTML scatter");
  flags.declare("latent", "", "output latent matrix .npy");
  declare_ingest_flag(flags);
  declare_telemetry_flags(flags);
  flags.declare("help", "false", "print usage");
  flags.parse(argc, argv);
  if (flags.get_bool("help")) {
    std::cout << flags.usage("arams pipeline");
    return 0;
  }
  ARAMS_CHECK(!flags.get("in").empty(), "--in is required");
  arm_telemetry(flags);

  stream::PipelineConfig config;
  config.sketcher = flags.get("sketcher");
  config.sketch.ell = static_cast<std::size_t>(flags.get_int("ell"));
  config.num_cores = static_cast<std::size_t>(flags.get_int("cores"));
  const long shards_flag = flags.get_int("shards");
  ARAMS_CHECK(shards_flag >= 1,
              "--shards must be >= 1, got " + std::to_string(shards_flag));
  config.shards = static_cast<std::size_t>(shards_flag);
  config.pca_components =
      static_cast<std::size_t>(flags.get_int("components"));
  config.umap.n_neighbors =
      static_cast<std::size_t>(flags.get_int("neighbors"));
  config.umap.n_epochs = static_cast<int>(flags.get_int("epochs"));
  apply_knn_flags(flags, config.umap);
  config.preprocess.center = flags.get_bool("center");
  const bool f32 = ingest_is_f32(flags);
  if (f32) {
    config.ingest_precision = stream::PipelineConfig::IngestPrecision::kF32;
  }
  const std::string clusterer = flags.get("clusterer");
  if (clusterer == "hdbscan") {
    config.cluster_method =
        stream::PipelineConfig::ClusterMethod::kHdbscan;
  } else if (clusterer == "kmeans") {
    config.cluster_method = stream::PipelineConfig::ClusterMethod::kKmeans;
    config.kmeans.k = static_cast<std::size_t>(flags.get_int("k"));
  } else {
    ARAMS_CHECK(clusterer == "optics",
                "unknown --clusterer: " + clusterer);
  }
  const stream::MonitoringPipeline pipeline(config);

  const std::string in = flags.get("in");
  Stopwatch timer;
  stream::PipelineResult result;
  if (ends_with(in, ".frames")) {
    // analyze() narrows at the door itself when the fp32 lane is on.
    result = pipeline.analyze(io::load_frames(in));
  } else if (f32) {
    // '<f4' payloads feed the sketcher without an fp64 round trip.
    result = pipeline.analyze_matrix(
        linalg::MatrixViewF(io::load_npy_f32(in)));
  } else {
    result = pipeline.analyze_matrix(io::load_npy(in));
  }
  const std::size_t n = result.embedding.rows();
  std::cout << "pipeline over " << n << " shots in " << timer.seconds()
            << " s: sketch " << result.sketch_seconds() << " s, UMAP "
            << result.embed_seconds() << " s, cluster "
            << result.cluster_seconds() << " s\n"
            << cluster::cluster_count(result.labels)
            << " clusters, final sketch rank " << result.final_ell << "\n";

  if (const std::string& csv = flags.get("csv"); !csv.empty()) {
    Table table({"shot", "x", "y", "label"});
    for (std::size_t i = 0; i < n; ++i) {
      table.add_row({Table::num(static_cast<long>(i)),
                     Table::num(result.embedding(i, 0)),
                     Table::num(result.embedding(i, 1)),
                     Table::num(static_cast<long>(result.labels[i]))});
    }
    table.save_csv(csv);
    std::cout << "embedding CSV written to " << csv << "\n";
  }
  if (const std::string& html = flags.get("html"); !html.empty()) {
    embed::ScatterConfig scatter;
    scatter.title = "ARAMS pipeline — " + in;
    embed::write_scatter_html(html, result.embedding, result.labels, {},
                              scatter);
    std::cout << "interactive scatter written to " << html << "\n";
  }
  if (const std::string& latent = flags.get("latent"); !latent.empty()) {
    io::save_npy(latent, result.latent);
    std::cout << "latent matrix written to " << latent << "\n";
  }
  write_telemetry(flags);
  return 0;
}

// Replays a recorded .frames bundle through the streaming monitor the way
// a live DAQ feed would arrive: a producer thread pushes shot events into
// a bounded hand-off queue while the analysis loop pops, ingests, and
// periodically republishes a Prometheus snapshot. This is the operational
// harness for the health watchdog — `--nan-from`/`--nan-count` poison a
// span of shots so an operator (or the round-trip test) can watch the
// DEGRADED/CRITICAL transition fire and recover.
int cmd_monitor(int argc, const char* const* argv) {
  CliFlags flags;
  flags.declare("in", "", ".frames bundle (required)");
  flags.declare("sketcher", "arams",
                "sketch backend (see `arams backends`)");
  flags.declare("batch", "64", "frames per sketch update");
  flags.declare("ell", "16", "initial sketch rank");
  flags.declare("shards", "1",
                "concurrent ingest shards per sketch update (>1 fans the "
                "batch out to sharded:<sketcher> consumers)");
  flags.declare("epsilon", "0.0", "rank-adaptation target (0 disables RA)");
  flags.declare("reservoir", "1024", "frames retained for snapshots");
  flags.declare("queue", "128", "DAQ hand-off queue capacity");
  flags.declare("fps", "0",
                "throttle replay to this shot rate (0 = full speed; full "
                "speed keeps the queue saturated, which the watchdog "
                "rightly reports as back-pressure)");
  flags.declare("publish-every", "8",
                "sketch batches between --prom-out rewrites");
  flags.declare("health-log", "",
                "write health incidents (state transitions) as JSON lines");
  flags.declare("nan-from", "-1",
                "inject a non-finite pixel starting at this shot index");
  flags.declare("nan-count", "0", "number of consecutive shots to poison");
  flags.declare("crash-after", "-1",
                "fault injection: std::terminate() after this many shots "
                "(exercises the post-mortem crash path; -1 disables)");
  declare_ingest_flag(flags);
  declare_knn_flags(flags);
  declare_telemetry_flags(flags);
  flags.declare("help", "false", "print usage");
  flags.parse(argc, argv);
  if (flags.get_bool("help")) {
    std::cout << flags.usage("arams monitor");
    return 0;
  }
  ARAMS_CHECK(!flags.get("in").empty(), "--in is required");
  arm_telemetry(flags);
  const auto frames = io::load_frames(flags.get("in"));

  stream::MonitorConfig config;
  config.pipeline.sketcher = flags.get("sketcher");
  const long shards_flag = flags.get_int("shards");
  ARAMS_CHECK(shards_flag >= 1,
              "--shards must be >= 1, got " + std::to_string(shards_flag));
  config.pipeline.shards = static_cast<std::size_t>(shards_flag);
  config.batch_size = static_cast<std::size_t>(flags.get_int("batch"));
  config.reservoir_size =
      static_cast<std::size_t>(flags.get_int("reservoir"));
  config.pipeline.sketch.ell =
      static_cast<std::size_t>(flags.get_int("ell"));
  const double epsilon = flags.get_double("epsilon");
  config.pipeline.sketch.rank_adaptive = epsilon > 0.0;
  config.pipeline.sketch.epsilon = epsilon;
  if (ingest_is_f32(flags)) {
    config.pipeline.ingest_precision =
        stream::PipelineConfig::IngestPrecision::kF32;
  }
  apply_knn_flags(flags, config.pipeline.umap);
  stream::StreamingMonitor monitor(config);

  // Re-point the crash snapshot at this run's watchdog so a post-mortem
  // carries the incident log (arm_telemetry ran before the monitor
  // existed).
  if (const std::string& dir = flags.get("postmortem-dir"); !dir.empty()) {
    obs::PostmortemConfig pm;
    pm.dir = dir;
    pm.health = &monitor.health();
    pm.autodump_on_critical = true;
    obs::configure_postmortem(pm);
    obs::refresh_postmortem_snapshot();
  }

  // Every state transition is echoed live; the full incident log lands in
  // --health-log at the end of the run.
  monitor.health().on_transition([](const obs::HealthIncident& incident) {
    std::cout << "health: " << obs::to_string(incident.from) << " -> "
              << obs::to_string(incident.to) << " (" << incident.reason
              << ")\n";
  });

  std::optional<obs::PeriodicPublisher> publisher;
  if (const std::string& prom = flags.get("prom-out"); !prom.empty()) {
    obs::PeriodicPublisher::Config pub_config;
    pub_config.path = prom;
    pub_config.every =
        static_cast<std::size_t>(flags.get_int("publish-every"));
    publisher.emplace(pub_config, obs::metrics(), &monitor.health());
  }

  const long nan_from = flags.get_int("nan-from");
  const long nan_count = flags.get_int("nan-count");

  stream::BoundedQueue<stream::ShotEvent> queue(
      static_cast<std::size_t>(flags.get_int("queue")));
  queue.enable_metrics("daq.queue");
  const double fps = flags.get_double("fps");
  std::thread producer([&] {
    for (std::size_t i = 0; i < frames.size(); ++i) {
      stream::ShotEvent event;
      event.shot_id = i;
      event.frame = frames[i];
      const long shot = static_cast<long>(i);
      if (nan_from >= 0 && shot >= nan_from &&
          shot < nan_from + nan_count) {
        event.frame.at(0, 0) = std::numeric_limits<double>::quiet_NaN();
      }
      if (!queue.push(std::move(event))) break;  // closed early
      if (fps > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(1.0 / fps));
      }
    }
    queue.close();
  });

  const long crash_after = flags.get_int("crash-after");
  Stopwatch timer;
  long shots_popped = 0;
  try {
    while (auto event = queue.pop()) {
      monitor.note_queue_saturation(queue.saturation());
      const bool updated = monitor.ingest(*event);
      if (updated && publisher) publisher->tick();
      ++shots_popped;
      if (crash_after >= 0 && shots_popped >= crash_after) {
        // Deterministic fault injection for the crash drill: terminate
        // runs the post-mortem hook in ordinary (non-signal) context and
        // behaves identically under ASan/TSan, unlike a raw SIGSEGV.
        std::cerr << "crash-after: injecting std::terminate() at shot "
                  << shots_popped << "\n";
        obs::flight_recorder().record(
            obs::FlightCode::kCrash,
            static_cast<std::uint64_t>(shots_popped));
        std::terminate();
      }
    }
  } catch (...) {
    // Unblock and reap the producer before the exception unwinds past the
    // joinable std::thread (which would call std::terminate).
    queue.close();
    while (queue.pop()) {
    }
    producer.join();
    throw;
  }
  producer.join();
  monitor.flush();

  const obs::HealthMonitor& health = monitor.health();
  std::cout << "monitored " << frames.size() << " shots in "
            << timer.seconds() << " s ("
            << monitor.throughput().recent_frames_per_second()
            << " fps recent, "
            << monitor.throughput().frames_per_second() << " fps lifetime)\n"
            << "rejected " << monitor.nonfinite_frames()
            << " non-finite frames, final sketch rank "
            << monitor.current_ell() << "\n"
            << "health: " << obs::to_string(health.state()) << " after "
            << health.transitions() << " transitions ("
            << health.incidents().size() << " incidents logged)\n";

  if (const std::string& path = flags.get("health-log"); !path.empty()) {
    std::ofstream out(path);
    ARAMS_CHECK(out.good(), "cannot open --health-log file: " + path);
    health.write_incidents_json(out);
    std::cout << "health incident log written to " << path << "\n";
  }
  if (publisher) publisher->publish_now();
  write_telemetry(flags, &health);
  return 0;
}

int cmd_compare(int argc, const char* const* argv) {
  CliFlags flags;
  flags.declare("data", "", "original data (.frames or .npy, required)");
  flags.declare("sketch", "", "sketch .npy (required)");
  flags.declare("power-iters", "60", "power iterations for the error");
  flags.declare("help", "false", "print usage");
  flags.parse(argc, argv);
  if (flags.get_bool("help")) {
    std::cout << flags.usage("arams compare");
    return 0;
  }
  ARAMS_CHECK(!flags.get("data").empty() && !flags.get("sketch").empty(),
              "--data and --sketch are required");
  const linalg::Matrix rows = load_rows(flags.get("data"));
  const linalg::Matrix sketch = io::load_npy(flags.get("sketch"));
  ARAMS_CHECK(rows.cols() == sketch.cols(),
              "data and sketch have different column counts");
  Rng power(1);
  const int iters = static_cast<int>(flags.get_int("power-iters"));
  const double abs_err =
      linalg::covariance_error(rows, sketch, power, iters);
  const double rel = abs_err / linalg::frobenius_norm_squared(rows);
  std::cout << "data:   " << rows.rows() << " x " << rows.cols() << "\n"
            << "sketch: " << sketch.rows() << " x " << sketch.cols() << "\n"
            << "covariance error |AtA - BtB|_2: " << abs_err << "\n"
            << "relative (vs |A|_F^2):          " << rel << "\n"
            << "FD bound at ell=" << sketch.rows() << ":          "
            << 1.0 / static_cast<double>(sketch.rows()) << "\n";
  return 0;
}

int cmd_diag(int argc, const char* const* argv) {
  CliFlags flags;
  flags.declare("in", "", ".frames bundle (required)");
  flags.declare("warmup", "120", "CUSUM calibration shots");
  flags.declare("mean", "", "optional PGM path for the mean frame");
  flags.declare("variance", "", "optional PGM path for the variance frame");
  flags.declare("mask-report", "false",
                "derive a dead/hot pixel mask and report its size");
  flags.declare("help", "false", "print usage");
  flags.parse(argc, argv);
  if (flags.get_bool("help")) {
    std::cout << flags.usage("arams diag");
    return 0;
  }
  ARAMS_CHECK(!flags.get("in").empty(), "--in is required");
  const auto frames = io::load_frames(flags.get("in"));

  stream::BeamDiagnostics diagnostics(
      static_cast<std::size_t>(flags.get_int("warmup")));
  long alarm_shots = 0;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    stream::ShotEvent event;
    event.shot_id = i;
    event.frame = frames[i];
    const auto alarms = diagnostics.update(event);
    if (!alarms.empty()) {
      ++alarm_shots;
      if (alarm_shots <= 10) {
        std::cout << "shot " << i << ":";
        for (const auto& a : alarms) std::cout << " [" << a << "]";
        std::cout << "\n";
      }
    }
  }
  std::cout << "monitored " << diagnostics.shots_seen() << " shots: "
            << diagnostics.total_alarms() << " alarms across "
            << alarm_shots << " shots\n";

  if (const std::string& mean = flags.get("mean"); !mean.empty()) {
    diagnostics.frame_stats().mean().save_pgm(mean);
    std::cout << "mean frame written to " << mean << "\n";
  }
  if (const std::string& var = flags.get("variance"); !var.empty()) {
    diagnostics.frame_stats().variance().save_pgm(var);
    std::cout << "variance frame written to " << var << "\n";
  }
  if (flags.get_bool("mask-report")) {
    const image::PixelMask mask =
        image::mask_from_stats(diagnostics.frame_stats());
    std::cout << "pixel mask: " << mask.bad_count() << " of "
              << mask.good.size() << " pixels flagged dead/hot\n";
  }
  return 0;
}

// Lists the factory-registered sketching backends, one per line as
// "name<TAB>description". The docs lint (tools/check_sketcher_doc.sh)
// parses this output, so the registry and docs/ALGORITHMS.md cannot drift
// apart silently.
int cmd_backends(int argc, const char* const* argv) {
  CliFlags flags;
  flags.declare("knn", "false",
                "list the kNN searcher backends (--knn-backend=) instead "
                "of the sketchers");
  flags.declare("help", "false", "print usage");
  flags.parse(argc, argv);
  if (flags.get_bool("help")) {
    std::cout << flags.usage("arams backends");
    return 0;
  }
  // Build provenance first, '#'-prefixed so scripted consumers of the
  // name<TAB>description lines can skip it (`grep -v '^#'`).
  std::cout << "# arams " << obs::build_info_line() << "\n";
  if (flags.get_bool("knn")) {
    for (const auto& name : embed::registered_searchers()) {
      std::cout << name << "\t" << embed::searcher_description(name)
                << "\n";
    }
    return 0;
  }
  for (const auto& name : core::registered_sketchers()) {
    std::cout << name << "\t" << core::sketcher_description(name) << "\n";
  }
  // The sharded wrapper spelling, listed with a concrete runnable inner so
  // scripted consumers (the CLI round-trip test iterates these names) can
  // exercise it like any plain backend.
  std::cout << "sharded:fd\t" << core::sketcher_description("sharded:fd")
            << "\n";
  return 0;
}

// Validates a post-mortem dump: parses the versioned format, prints a
// summary of what the file contains, and exits non-zero when any of the
// forensic sections (backtrace, flight-recorder tail, metrics snapshot,
// health incident log) is missing or the file was truncated mid-crash.
int cmd_doctor(int argc, const char* const* argv) {
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help") {
      std::cout << "usage: arams doctor <postmortem-file>\n"
                   "\n"
                   "parse and validate a post-mortem dump written by\n"
                   "--postmortem-dir (on crash or watchdog CRITICAL).\n";
      return 0;
    }
    path = arg;
  }
  if (path.empty()) {
    std::cerr << "usage: arams doctor <postmortem-file>\n";
    return 1;
  }
  std::ifstream in(path);
  if (!in.good()) {
    std::cerr << "doctor: cannot open " << path << "\n";
    return 1;
  }
  obs::PostmortemReport report;
  std::string error;
  if (!obs::parse_postmortem(in, report, &error)) {
    std::cerr << "doctor: " << path << ": " << error << "\n";
    return 1;
  }
  std::cout << "post-mortem " << path << " (format v" << report.version
            << ")\n"
            << "  reason:               " << report.reason << "\n"
            << "  pid:                  " << report.pid << "\n"
            << "  uptime:               " << report.uptime << " s\n"
            << "  build:                " << report.build << "\n"
            << "  backtrace frames:     " << report.backtrace.size() << "\n"
            << "  flight-recorder tail: " << report.flight_lines.size()
            << " events\n"
            << "  metrics snapshot:     " << report.metrics_lines.size()
            << " lines\n"
            << "  health incident log:  " << report.health_lines.size()
            << " lines\n";
  if (!obs::validate_postmortem(report, &error)) {
    std::cerr << "doctor: INVALID: " << error << "\n";
    return 1;
  }
  std::cout << "doctor: OK — dump is complete and parseable\n";
  return 0;
}

int cmd_info(int argc, const char* const* argv) {
  CliFlags flags;
  flags.declare("in", "", "file to describe (required)");
  flags.declare("help", "false", "print usage");
  flags.parse(argc, argv);
  if (flags.get_bool("help")) {
    std::cout << flags.usage("arams info");
    return 0;
  }
  const std::string in = flags.get("in");
  ARAMS_CHECK(!in.empty(), "--in is required");
  if (ends_with(in, ".frames")) {
    const auto frames = io::load_frames(in);
    double total = 0.0;
    for (const auto& f : frames) total += f.total_intensity();
    std::cout << in << ": frame bundle, " << frames.size() << " frames of "
              << frames.front().height() << "x" << frames.front().width()
              << ", mean intensity "
              << total / static_cast<double>(frames.size()) << "\n";
  } else {
    const linalg::Matrix m = io::load_npy(in);
    std::cout << in << ": float64 matrix, " << m.rows() << " x "
              << m.cols() << ", Frobenius norm "
              << linalg::frobenius_norm(m) << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 1;
  }
  const std::string command = argv[1];
  try {
    if (command == "generate") return cmd_generate(argc - 1, argv + 1);
    if (command == "sketch") return cmd_sketch(argc - 1, argv + 1);
    if (command == "pipeline") return cmd_pipeline(argc - 1, argv + 1);
    if (command == "monitor") return cmd_monitor(argc - 1, argv + 1);
    if (command == "compare") return cmd_compare(argc - 1, argv + 1);
    if (command == "diag") return cmd_diag(argc - 1, argv + 1);
    if (command == "backends") return cmd_backends(argc - 1, argv + 1);
    if (command == "doctor") return cmd_doctor(argc - 1, argv + 1);
    if (command == "info") return cmd_info(argc - 1, argv + 1);
    if (command == "--help" || command == "help") {
      print_usage();
      return 0;
    }
    std::cerr << "unknown command: " << command << "\n";
    print_usage();
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
