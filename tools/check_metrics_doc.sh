#!/usr/bin/env bash
# Doc lint: every metric name registered against obs::metrics() (or a
# HealthMonitor-injected registry) in src/ or tools/ must appear in
# docs/TELEMETRY.md, so the operator-facing catalogue cannot silently rot.
#
# Scans for literal first arguments to counter/gauge/histogram/ewma/
# sliding_histogram (and the pipeline's stage_window helper). StageReport
# reads (`report.counter(...)`) are per-run outputs, not registry names,
# and are excluded. Dynamically composed names — `pool.worker.<i>.*`, the
# BoundedQueue `<prefix>.*` family — can't be greped for; they are
# documented as patterns and covered by the exporter tests instead.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
DOC="$ROOT/docs/TELEMETRY.md"
test -r "$DOC" || { echo "missing $DOC" >&2; exit 1; }

names="$(
  grep -rhE '(counter|gauge|histogram|ewma|sliding_histogram|stage_window)\(\s*"' \
      "$ROOT/src" "$ROOT/tools" --include='*.cpp' --include='*.hpp' \
    | grep -vE 'report(\.|->)' \
    | grep -oE '(counter|gauge|histogram|ewma|sliding_histogram|stage_window)\(\s*"[^"]+"' \
    | sed -E 's/.*"([^"]+)"$/\1/' \
    | sort -u
)"

missing=0
while IFS= read -r name; do
  [ -n "$name" ] || continue
  if ! grep -qF "$name" "$DOC"; then
    echo "undocumented metric: $name — add it to docs/TELEMETRY.md" >&2
    missing=1
  fi
done <<< "$names"

# The flight-recorder decision codes are operator-facing too: every
# FlightCode string the recorder can journal must appear in the
# TELEMETRY.md event-code table.
codes="$(
  grep -oE 'case FlightCode::k[A-Za-z]+: return "[^"]+"' \
      "$ROOT/src/obs/flight_recorder.cpp" \
    | sed -E 's/.*return "([^"]+)"$/\1/' \
    | sort -u
)"
test -n "$codes" || { echo "no FlightCode names found" >&2; exit 1; }
while IFS= read -r code; do
  [ -n "$code" ] || continue
  if ! grep -qF "\`$code\`" "$DOC"; then
    echo "undocumented flight-recorder event code: \`$code\` — add it to docs/TELEMETRY.md" >&2
    missing=1
  fi
done <<< "$codes"

if [ "$missing" -ne 0 ]; then
  exit 1
fi
echo "metrics doc lint OK ($(wc -l <<< "$names") registered names, $(wc -l <<< "$codes") flight codes documented)"
