// XPCS contrast monitoring: the §III-A scenario where beam-profile
// instability corrupts speckle contrast. A speckle stream with a mid-run
// coherence degradation flows through (a) the CUSUM diagnostics, which must
// alarm on the contrast drop, and (b) the sketching pipeline, whose
// per-shot speckle statistics must separate good-beam from degraded-beam
// shots — the "classify the X-ray pulses according to their profiles" case.
//
//   ./xpcs_contrast_monitor [--frames=600] [--size=48] [--degrade-at=300]

#include <cmath>
#include <iostream>

#include "arams.hpp"

int main(int argc, char** argv) {
  using namespace arams;

  CliFlags flags;
  flags.declare("frames", "600", "speckle frames to stream");
  flags.declare("size", "48", "frame height/width");
  flags.declare("degrade-at", "300", "shot index where coherence degrades");
  flags.declare("help", "false", "print usage");
  flags.parse(argc, argv);
  if (flags.get_bool("help")) {
    std::cout << flags.usage("xpcs_contrast_monitor");
    return 0;
  }
  const auto frames = static_cast<std::size_t>(flags.get_int("frames"));
  const auto size = static_cast<std::size_t>(flags.get_int("size"));
  const auto degrade_at =
      static_cast<std::size_t>(flags.get_int("degrade-at"));

  // Two generator phases sharing one run: nominal coherence, then a beam
  // degradation that halves the speckle contrast (partial coherence).
  data::SpeckleConfig good;
  good.height = size;
  good.width = size;
  good.contrast = 1.0;
  data::SpeckleConfig bad = good;
  bad.contrast = 0.45;
  bad.coherence_length = good.coherence_length * 2.0;  // fatter grains
  data::SpeckleGenerator good_gen(good, 31);
  data::SpeckleGenerator bad_gen(bad, 32);

  stream::BeamDiagnostics diagnostics(/*warmup=*/120);
  // CUSUM directly on the XPCS observable.
  stream::CusumDetector contrast_cusum(/*warmup=*/120, 0.5, 8.0);

  std::vector<image::ImageF> all_frames;
  std::vector<int> phase(frames, 0);
  all_frames.reserve(frames);
  long false_alarms = 0;        // alarms while the beam was still nominal
  long first_detection = -1;    // first alarm at/after the degradation
  for (std::size_t i = 0; i < frames; ++i) {
    const bool degraded = i >= degrade_at;
    data::SpeckleSample sample =
        degraded ? bad_gen.next() : good_gen.next();
    phase[i] = degraded ? 1 : 0;

    stream::ShotEvent event;
    event.shot_id = i;
    event.frame = sample.frame;
    diagnostics.update(event);
    if (contrast_cusum.update(sample.truth.realized_contrast)) {
      if (!degraded) {
        ++false_alarms;
      } else if (first_detection < 0) {
        first_detection = static_cast<long>(i);
      }
    }
    all_frames.push_back(std::move(sample.frame));
  }

  std::cout << "streamed " << frames << " speckle frames ("
            << degrade_at << " nominal, " << frames - degrade_at
            << " degraded)\n"
            << "contrast CUSUM: reference contrast "
            << contrast_cusum.reference_mean() << ", first detection at shot "
            << first_detection << " (degradation started at " << degrade_at
            << "), " << false_alarms << " false alarms before it\n"
            << "frame-stat alarms from generic diagnostics: "
            << diagnostics.total_alarms() << "\n";

  // Unsupervised classification of the same shots via the pipeline's
  // general matrix entry point. Raw speckle pixels are isotropic random
  // texture — individual frames share no directions, so pixel-space PCA
  // carries no phase signal. What differs between beam phases is the
  // *statistics* of each frame; XPCS practice extracts them per shot:
  // contrast, mean, and the spatial autocorrelation at a few lags (the
  // grain-size signature).
  const auto lag_corr = [](const image::ImageF& f, std::size_t lag) {
    double mean = 0.0;
    for (const double p : f.pixels()) mean += p;
    mean /= static_cast<double>(f.pixel_count());
    double sab = 0.0, saa = 0.0;
    for (std::size_t y = 0; y < f.height(); ++y) {
      for (std::size_t x = 0; x + lag < f.width(); ++x) {
        sab += (f.at(y, x) - mean) * (f.at(y, x + lag) - mean);
      }
    }
    for (std::size_t y = 0; y < f.height(); ++y) {
      for (std::size_t x = 0; x < f.width(); ++x) {
        saa += (f.at(y, x) - mean) * (f.at(y, x) - mean);
      }
    }
    return saa > 0.0 ? sab / saa : 0.0;
  };
  linalg::Matrix features(frames, 6);
  for (std::size_t i = 0; i < frames; ++i) {
    const auto& f = all_frames[i];
    features(i, 0) = data::speckle_contrast(f);
    features(i, 1) =
        f.total_intensity() / static_cast<double>(f.pixel_count());
    features(i, 2) = lag_corr(f, 1);
    features(i, 3) = lag_corr(f, 2);
    features(i, 4) = lag_corr(f, 4);
    features(i, 5) = lag_corr(f, 8);
  }

  stream::PipelineConfig config;
  config.sketch.ell = 6;
  config.num_cores = 2;
  config.pca_components = 4;
  config.umap.n_neighbors = 15;
  config.umap.n_epochs = 150;
  const stream::MonitoringPipeline pipeline(config);
  const stream::PipelineResult result =
      pipeline.analyze_matrix(features);

  const double ari = cluster::adjusted_rand_index(result.labels, phase);
  std::cout << "pipeline on per-shot speckle statistics: "
            << cluster::cluster_count(result.labels)
            << " clusters over 2 beam phases, ARI vs phase = " << ari
            << "\n";
  std::cout << (first_detection >= 0 &&
                        first_detection < static_cast<long>(degrade_at + 60)
                    ? "monitoring verdict: degradation caught promptly\n"
                    : "monitoring verdict: check alarm latency\n");
  return 0;
}
