// Diffraction-data exploration (the Fig. 6 scenario): frames from K latent
// quadrant-weight classes go through the pipeline unsupervised; we report
// how well OPTICS clusters recover the latent classes (ARI / purity).
//
//   ./diffraction_explorer [--frames=400] [--classes=4] [--size=48]

#include <iostream>
#include <sstream>

#include "arams.hpp"

int main(int argc, char** argv) {
  using namespace arams;

  CliFlags flags;
  flags.declare("frames", "400", "number of diffraction frames");
  flags.declare("classes", "4", "number of latent quadrant-weight classes");
  flags.declare("size", "48", "frame height/width in pixels");
  flags.declare("out", "", "optional CSV path for the embedding");
  flags.declare("html", "", "optional interactive HTML scatter path");
  flags.declare("help", "false", "print usage");
  flags.parse(argc, argv);
  if (flags.get_bool("help")) {
    std::cout << flags.usage("diffraction_explorer");
    return 0;
  }
  const auto frames = static_cast<std::size_t>(flags.get_int("frames"));

  data::DiffractionConfig diff;
  diff.height = static_cast<std::size_t>(flags.get_int("size"));
  diff.width = diff.height;
  diff.num_classes = static_cast<std::size_t>(flags.get_int("classes"));
  diff.photons_per_frame = 5e4;

  std::cout << "generating " << frames << " diffraction frames from "
            << diff.num_classes << " latent classes...\n";
  stream::DiffractionSource source(diff, frames, 120.0, 11);
  const auto events = stream::drain(source, frames);
  std::vector<int> truth;
  truth.reserve(frames);
  for (const auto& e : events) truth.push_back(e.truth_label);

  stream::PipelineConfig config;
  config.sketch.ell = 24;
  config.num_cores = 4;
  config.pca_components = 10;
  config.umap.n_neighbors = 15;
  config.umap.n_epochs = 200;
  config.preprocess.center = false;  // rings are already centered
  const stream::MonitoringPipeline pipeline(config);
  const stream::PipelineResult result = pipeline.analyze_events(events);

  const double ari = cluster::adjusted_rand_index(result.labels, truth);
  const double pur = cluster::purity(result.labels, truth);
  const double sil =
      cluster::silhouette(result.embedding, result.labels);

  std::cout << "\nOPTICS found " << cluster::cluster_count(result.labels)
            << " clusters (truth: " << diff.num_classes << ")\n"
            << "adjusted Rand index vs latent classes = " << ari << "\n"
            << "purity                                = " << pur << "\n"
            << "embedding silhouette                  = " << sil << "\n"
            << "timings: sketch " << result.sketch_seconds() << " s, UMAP "
            << result.embed_seconds() << " s, cluster "
            << result.cluster_seconds() << " s\n";

  if (const std::string& out = flags.get("out"); !out.empty()) {
    Table table({"x", "y", "cluster", "truth"});
    for (std::size_t i = 0; i < frames; ++i) {
      table.add_row({Table::num(result.embedding(i, 0)),
                     Table::num(result.embedding(i, 1)),
                     Table::num(static_cast<long>(result.labels[i])),
                     Table::num(static_cast<long>(truth[i]))});
    }
    table.save_csv(out);
    std::cout << "embedding written to " << out << "\n";
  }
  if (const std::string& html = flags.get("html"); !html.empty()) {
    std::vector<std::string> tooltips(frames);
    for (std::size_t i = 0; i < frames; ++i) {
      std::ostringstream tip;
      tip << "shot " << events[i].shot_id << " | latent class "
          << truth[i] << " | cluster " << result.labels[i];
      tooltips[i] = tip.str();
    }
    embed::ScatterConfig scatter;
    scatter.title = "Diffraction embedding (synthetic LCLS run)";
    embed::write_scatter_html(html, result.embedding, result.labels,
                              tooltips, scatter);
    std::cout << "interactive scatter written to " << html << "\n";
  }
  return 0;
}
