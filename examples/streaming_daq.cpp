// Streaming DAQ demo (Section VI-B operational mode): frames arrive from a
// rate-controlled source; the StreamingMonitor keeps a persistent
// rank-adaptive sketch and produces operator snapshots on demand, while the
// throughput meter reports how far above the detector rate the pipeline
// runs.
//
//   ./streaming_daq [--frames=1500] [--batch=128] [--rate=120] [--size=32]

#include <iostream>

#include "arams.hpp"

int main(int argc, char** argv) {
  using namespace arams;

  CliFlags flags;
  flags.declare("frames", "1500", "frames to stream");
  flags.declare("batch", "128", "frames per sketch update");
  flags.declare("rate", "120", "detector rate in Hz (timestamps only)");
  flags.declare("size", "32", "frame height/width");
  flags.declare("snapshots", "3", "operator snapshots across the run");
  flags.declare("help", "false", "print usage");
  flags.parse(argc, argv);
  if (flags.get_bool("help")) {
    std::cout << flags.usage("streaming_daq");
    return 0;
  }
  const auto frames = static_cast<std::size_t>(flags.get_int("frames"));
  const auto snapshots =
      std::max<long>(1, flags.get_int("snapshots"));

  data::BeamProfileConfig beam;
  beam.height = static_cast<std::size_t>(flags.get_int("size"));
  beam.width = beam.height;
  stream::BeamProfileSource source(beam, frames,
                                   flags.get_double("rate"), 17);

  stream::MonitorConfig config;
  config.batch_size = static_cast<std::size_t>(flags.get_int("batch"));
  config.reservoir_size = 1024;
  config.pipeline.sketch.ell = 16;
  config.pipeline.sketch.rank_adaptive = true;
  config.pipeline.sketch.epsilon = 0.08;
  config.pipeline.pca_components = 10;
  config.pipeline.umap.n_neighbors = 12;
  config.pipeline.umap.n_epochs = 120;
  stream::StreamingMonitor monitor(config);

  // Shot-to-shot instrument diagnostics run alongside the science pipeline
  // (the paper's "instrument diagnostic" use of the same stream).
  stream::BeamDiagnostics diagnostics(/*warmup=*/120);

  const std::size_t snap_every = frames / static_cast<std::size_t>(snapshots);
  std::size_t seen = 0;
  while (auto event = source.next()) {
    monitor.ingest(*event);
    for (const auto& alarm : diagnostics.update(*event)) {
      std::cout << "[shot " << seen << "] ALARM: " << alarm << "\n";
    }
    ++seen;
    if (seen % snap_every == 0) {
      monitor.flush();
      const stream::SnapshotResult snap = monitor.snapshot();
      std::cout << "[shot " << seen << "] snapshot of "
                << snap.embedding.rows() << " frames in "
                << snap.snapshot_seconds() << " s; sketch rank "
                << monitor.current_ell() << "; sketch error gauge "
                << monitor.sketch_error_estimate()
                << "; throughput so far "
                << monitor.throughput().frames_per_second() << " frames/s\n";
    }
  }
  monitor.flush();

  const auto& meter = monitor.throughput();
  const double detector_rate = flags.get_double("rate");
  std::cout << "\nstreamed " << meter.total_frames() << " frames in "
            << meter.total_seconds() << " s of pipeline time → "
            << meter.frames_per_second() << " frames/s ("
            << meter.frames_per_second() / detector_rate
            << "x the detector rate)\n"
            << "sketch rotations: " << monitor.sketch_stats().svd_count
            << ", rank increases: "
            << monitor.sketch_stats().rank_increases << "\n"
            << "diagnostics: " << diagnostics.shots_seen()
            << " shots monitored, " << diagnostics.total_alarms()
            << " drift alarms\n";
  return 0;
}
