// Beam-profile monitoring (the Fig. 5 scenario): generate synthetic beam
// profiles with known ground-truth factors, run the full pipeline
// (preprocess → ARAMS sketch → PCA → UMAP → OPTICS/ABOD), and report how
// the unsupervised embedding organizes the data.
//
//   ./beam_monitor [--frames=600] [--size=48] [--cores=4] [--out=embedding.csv]

#include <algorithm>
#include <cmath>
#include <iostream>
#include <sstream>

#include "arams.hpp"

int main(int argc, char** argv) {
  using namespace arams;

  CliFlags flags;
  flags.declare("frames", "600", "number of beam-profile frames");
  flags.declare("size", "48", "frame height/width in pixels");
  flags.declare("cores", "4", "virtual cores for sketching");
  flags.declare("out", "", "optional CSV path for the embedding");
  flags.declare("html", "", "optional interactive HTML scatter path");
  flags.declare("pointing", "false",
                "skip CoM centering so pointing jitter dominates");
  flags.declare("help", "false", "print usage");
  flags.parse(argc, argv);
  if (flags.get_bool("help")) {
    std::cout << flags.usage("beam_monitor");
    return 0;
  }
  const auto frames = static_cast<std::size_t>(flags.get_int("frames"));
  const auto size = static_cast<std::size_t>(flags.get_int("size"));

  // 1. Synthetic detector: Gaussian-mode profiles with CoM jitter,
  //    ellipticity, occasional multi-lobe and exotic donut shapes.
  data::BeamProfileConfig beam;
  beam.height = size;
  beam.width = size;
  beam.exotic_prob = 0.02;
  Rng rng(7);
  std::cout << "generating " << frames << " beam profiles (" << size << "x"
            << size << ")...\n";
  const auto samples = data::generate_beam_profiles(beam, frames, rng);
  std::vector<image::ImageF> images;
  images.reserve(frames);
  for (const auto& s : samples) images.push_back(s.frame);

  // 2. Full monitoring pipeline with the paper's preprocessing
  //    (threshold + CoM centering + normalization): the embedding then
  //    organizes by beam *shape*. Pass --pointing to skip centering and
  //    let the raw pointing (CoM) signal dominate instead.
  stream::PipelineConfig config;
  config.sketch.ell = 24;
  config.sketch.epsilon = 0.05;
  config.num_cores = static_cast<std::size_t>(flags.get_int("cores"));
  config.pca_components = 12;
  config.umap.n_neighbors = 15;
  config.umap.n_epochs = 200;
  config.preprocess.center = !flags.get_bool("pointing");
  const stream::MonitoringPipeline pipeline(config);
  const stream::PipelineResult result = pipeline.analyze(images);

  // 3. Interpret the embedding against the generator's ground truth.
  //    CoM is a signed factor (correlates with a signed axis); elongation
  //    happens at a random orientation, so it maps to *distance from the
  //    embedding center* along an axis.
  std::vector<double> com_x(frames), ellipticity(frames);
  for (std::size_t i = 0; i < frames; ++i) {
    com_x[i] = samples[i].truth.com_x;
    ellipticity[i] = samples[i].truth.ellipticity;
  }
  double best_com = 0.0, best_ell = 0.0;
  for (std::size_t axis = 0; axis < 2; ++axis) {
    best_com = std::max(best_com, std::abs(embed::axis_factor_correlation(
                                      result.embedding, axis, com_x)));
    double mean = 0.0;
    for (std::size_t i = 0; i < frames; ++i) {
      mean += result.embedding(i, axis);
    }
    mean /= static_cast<double>(frames);
    linalg::Matrix dev(frames, 1);
    for (std::size_t i = 0; i < frames; ++i) {
      dev(i, 0) = std::abs(result.embedding(i, axis) - mean);
    }
    best_ell = std::max(best_ell,
                        std::abs(embed::axis_factor_correlation(
                            dev, 0, ellipticity)));
  }
  const double trust =
      embed::trustworthiness(result.latent, result.embedding, 12);

  // Exotic (donut) profiles form their own tight region of the embedding;
  // report how far they sit from the nearest normal profile on average.
  std::size_t exotic_total = 0;
  double exotic_gap = 0.0;
  for (std::size_t i = 0; i < frames; ++i) {
    if (!samples[i].truth.exotic) continue;
    ++exotic_total;
    double nearest_normal = 1e300;
    for (std::size_t j = 0; j < frames; ++j) {
      if (samples[j].truth.exotic) continue;
      const double d = std::hypot(result.embedding(i, 0) -
                                      result.embedding(j, 0),
                                  result.embedding(i, 1) -
                                      result.embedding(j, 1));
      nearest_normal = std::min(nearest_normal, d);
    }
    exotic_gap += nearest_normal;
  }
  if (exotic_total > 0) exotic_gap /= static_cast<double>(exotic_total);

  std::cout << "\npipeline timings: sketch " << result.sketch_seconds()
            << " s, project " << result.project_seconds() << " s, UMAP "
            << result.embed_seconds() << " s, cluster "
            << result.cluster_seconds() << " s\n"
            << "final sketch rank: " << result.final_ell << "\n"
            << "|corr(embedding axis, CoM offset)|      = " << best_com
            << "\n"
            << "|corr(|axis deviation|, ellipticity)|   = " << best_ell
            << "\n"
            << "trustworthiness(latent -> 2-D)          = " << trust << "\n"
            << "exotic profiles: " << exotic_total
            << ", mean gap to nearest normal profile: " << exotic_gap
            << "\n";

  if (const std::string& out = flags.get("out"); !out.empty()) {
    Table table({"x", "y", "label", "com_x", "ellipticity", "exotic"});
    for (std::size_t i = 0; i < frames; ++i) {
      table.add_row({Table::num(result.embedding(i, 0)),
                     Table::num(result.embedding(i, 1)),
                     Table::num(static_cast<long>(result.labels[i])),
                     Table::num(com_x[i]), Table::num(ellipticity[i]),
                     samples[i].truth.exotic ? "1" : "0"});
    }
    table.save_csv(out);
    std::cout << "embedding written to " << out << "\n";
  }
  if (const std::string& html = flags.get("html"); !html.empty()) {
    std::vector<std::string> tooltips(frames);
    for (std::size_t i = 0; i < frames; ++i) {
      std::ostringstream tip;
      tip << "shot " << i << " | ellipticity "
          << samples[i].truth.ellipticity << " | lobes "
          << samples[i].truth.lobes
          << (samples[i].truth.exotic ? " | EXOTIC" : "");
      tooltips[i] = tip.str();
    }
    embed::ScatterConfig scatter;
    scatter.title = "Beam-profile embedding (synthetic LCLS run)";
    embed::write_scatter_html(html, result.embedding, result.labels,
                              tooltips, scatter);
    std::cout << "interactive scatter written to " << html << "\n";
  }
  return 0;
}
