// Quickstart: sketch a synthetic low-rank matrix with ARAMS and check the
// covariance error against the FD guarantee.
//
//   ./quickstart [--n=2000] [--d=300] [--ell=32] [--beta=0.8] [--epsilon=0.05]

#include <iostream>

#include "arams.hpp"

int main(int argc, char** argv) {
  using namespace arams;

  CliFlags flags;
  flags.declare("n", "2000", "number of samples (rows)");
  flags.declare("d", "300", "feature dimension (columns)");
  flags.declare("ell", "32", "initial sketch rank");
  flags.declare("beta", "0.8", "priority-sampling keep fraction");
  flags.declare("epsilon", "0.05", "rank-adaptation error target");
  flags.declare("help", "false", "print usage");
  flags.parse(argc, argv);
  if (flags.get_bool("help")) {
    std::cout << flags.usage("quickstart");
    return 0;
  }

  // 1. Generate data: exponentially decaying spectrum, like a beam-profile
  //    covariance.
  data::SyntheticConfig data_config;
  data_config.n = static_cast<std::size_t>(flags.get_int("n"));
  data_config.d = static_cast<std::size_t>(flags.get_int("d"));
  data_config.spectrum.kind = data::DecayKind::kExponential;
  data_config.spectrum.count = std::min(data_config.d, std::size_t{100});
  data_config.spectrum.rate = 0.08;
  Rng rng(2024);
  std::cout << "generating " << data_config.n << " x " << data_config.d
            << " synthetic dataset...\n";
  const linalg::Matrix a = data::make_low_rank(data_config, rng);

  // 2. Sketch it with ARAMS (priority sampling + rank-adaptive FD).
  core::AramsConfig sketch_config;
  sketch_config.ell = static_cast<std::size_t>(flags.get_int("ell"));
  sketch_config.beta = flags.get_double("beta");
  sketch_config.epsilon = flags.get_double("epsilon");
  core::Arams sketcher(sketch_config);

  Stopwatch timer;
  const core::AramsResult result = sketcher.sketch_matrix(a);
  const double seconds = timer.seconds();

  // 3. Report quality: ‖AᵀA − BᵀB‖₂ relative to ‖A‖²_F, against the FD
  //    bound 1/ℓ.
  Rng power(7);
  const double rel_err =
      linalg::covariance_error_relative(a, result.sketch, power, 80);

  std::cout << "sketch: " << result.sketch.rows() << " x "
            << result.sketch.cols() << " (final ell = " << result.final_ell
            << ", rows sampled = " << result.rows_sampled << ")\n"
            << "time:   " << seconds << " s ("
            << result.report.counter("svd_count") << " rotations)\n"
            << "error:  relative covariance error = " << rel_err
            << "  [FD bound 1/ell = "
            << 1.0 / static_cast<double>(result.final_ell) << "]\n";
  return 0;
}
