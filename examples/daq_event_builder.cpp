// Event-built vetoing — the paper's §I motivating use case, end to end:
// "The analysis of upstream diagnostic detector data, which are used to
// monitor the beam shape, enables labeling events as good or bad, thus
// informing the analysis of downstream measurement detectors … events with
// poor beam shape can be discarded from the downstream analysis."
//
// Two detectors feed the event builder out of order and with drops: an
// upstream beam-profile camera and a downstream diffraction area detector.
// A DAQ thread fuses readouts into shot events and pushes them through a
// bounded queue; the analysis thread applies a beam-quality veto (CoM
// offset + ellipticity cut on the upstream frame) and sketches only the
// surviving downstream frames. The report compares the diffraction-class
// recovery with and without the veto.
//
//   ./daq_event_builder [--shots=400] [--size=32] [--bad-beam-frac=0.3]

#include <cmath>
#include <iostream>
#include <thread>

#include "arams.hpp"

namespace {

using namespace arams;

/// Beam-quality veto: reject frames whose CoM wanders or that are heavily
/// elongated — the "poor beam shape" label.
bool beam_is_good(const image::ImageF& beam_frame) {
  const image::CenterOfMass com = image::center_of_mass(beam_frame);
  const double cx = (static_cast<double>(beam_frame.width()) - 1.0) / 2.0;
  const double cy = (static_cast<double>(beam_frame.height()) - 1.0) / 2.0;
  const double offset = std::hypot(com.x - cx, com.y - cy) /
                        static_cast<double>(beam_frame.width());
  return offset < 0.08;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.declare("shots", "400", "number of shots");
  flags.declare("size", "32", "frame height/width");
  flags.declare("bad-beam-frac", "0.3",
                "fraction of shots with a wandering beam");
  flags.declare("help", "false", "print usage");
  flags.parse(argc, argv);
  if (flags.get_bool("help")) {
    std::cout << flags.usage("daq_event_builder");
    return 0;
  }
  const auto shots = static_cast<std::size_t>(flags.get_int("shots"));
  const auto size = static_cast<std::size_t>(flags.get_int("size"));
  const double bad_frac = flags.get_double("bad-beam-frac");

  // Generators. Bad-beam shots also corrupt the downstream frame (extra
  // smear), which is why vetoing helps the analysis.
  data::BeamProfileConfig good_beam;
  good_beam.height = size;
  good_beam.width = size;
  good_beam.com_jitter = 0.02;
  data::BeamProfileConfig bad_beam = good_beam;
  bad_beam.com_jitter = 0.2;  // wandering pointing

  data::DiffractionConfig diff;
  diff.height = size;
  diff.width = size;
  diff.num_classes = 3;
  diff.photons_per_frame = 4e4;
  const data::DiffractionGenerator diff_gen(diff);

  Rng rng(47);
  struct Readout {
    std::string detector;
    std::uint64_t shot;
    image::ImageF frame;
  };
  std::vector<Readout> wire;  // the "timing-system wire", out of order
  std::vector<int> truth(shots);
  std::vector<bool> bad_shot(shots);
  for (std::size_t s = 0; s < shots; ++s) {
    bad_shot[s] = rng.uniform() < bad_frac;
    Rng beam_rng = rng.split(s);
    auto beam =
        data::generate_beam_profile(bad_shot[s] ? bad_beam : good_beam,
                                    beam_rng);
    auto area = diff_gen.generate(rng);
    truth[s] = area.truth.class_label;
    if (bad_shot[s]) {
      // Poor beam smears the downstream pattern into near-uniform haze.
      image::ImageF& f = area.frame;
      const double mean =
          f.total_intensity() / static_cast<double>(f.pixel_count());
      for (auto& p : f.pixels()) {
        p = 0.15 * p + 0.85 * mean;
      }
    }
    wire.push_back({"beam", s, std::move(beam.frame)});
    wire.push_back({"area", s, std::move(area.frame)});
  }
  // Scramble arrival order within a bounded skew (the real wire is nearly
  // ordered but interleaved across detectors).
  for (std::size_t i = 0; i + 8 < wire.size(); ++i) {
    std::swap(wire[i], wire[i + rng.uniform_index(8)]);
  }

  // DAQ thread: event-build the wire and push fused events downstream.
  stream::BoundedQueue<stream::FusedEvent> queue(32);
  stream::EventBuilder builder({"beam", "area"}, 64);
  std::thread daq([&] {
    for (auto& readout : wire) {
      for (auto& event :
           builder.push(readout.detector, readout.shot, 0.0,
                        std::move(readout.frame))) {
        queue.push(std::move(event));
      }
    }
    for (auto& event : builder.flush()) {
      queue.push(std::move(event));
    }
    queue.close();
  });

  // Analysis thread (this one): veto on the upstream readout, collect the
  // downstream frames of surviving shots.
  std::vector<image::ImageF> kept_frames, all_frames;
  std::vector<int> kept_truth, all_truth;
  std::size_t vetoed = 0, incomplete = 0;
  while (auto event = queue.pop()) {
    if (!event->complete) {
      ++incomplete;
      continue;
    }
    const auto& beam_frame = event->readouts.at("beam");
    const auto& area_frame = event->readouts.at("area");
    all_frames.push_back(area_frame);
    all_truth.push_back(truth[event->shot_id]);
    if (!beam_is_good(beam_frame)) {
      ++vetoed;
      continue;
    }
    kept_frames.push_back(area_frame);
    kept_truth.push_back(truth[event->shot_id]);
  }
  daq.join();

  std::cout << "event-built " << all_frames.size() << " complete shots ("
            << incomplete << " incomplete, "
            << builder.stats().stale_readouts
            << " readouts lost beyond the reorder window), vetoed "
            << vetoed << " poor-beam shots, kept " << kept_frames.size()
            << "\n";

  // Downstream analysis with and without the veto.
  stream::PipelineConfig config;
  config.sketch.ell = 20;
  config.num_cores = 2;
  config.pca_components = 8;
  config.umap.n_neighbors = 12;
  config.umap.n_epochs = 150;
  config.preprocess.center = false;
  const stream::MonitoringPipeline pipeline(config);

  const auto run = [&](const std::vector<image::ImageF>& frames,
                       const std::vector<int>& labels) {
    const stream::PipelineResult result = pipeline.analyze(frames);
    return cluster::adjusted_rand_index(result.labels, labels);
  };
  const double ari_all = run(all_frames, all_truth);
  const double ari_kept = run(kept_frames, kept_truth);
  std::cout << "diffraction-class recovery (ARI): all shots = " << ari_all
            << ", after beam veto = " << ari_kept << "\n"
            << (ari_kept > ari_all
                    ? "the upstream veto improved the downstream analysis\n"
                    : "no improvement — inspect the veto threshold\n");
  return 0;
}
