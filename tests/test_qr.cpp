// Tests for Householder QR and Gram–Schmidt orthonormalization.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/qr.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace arams::linalg {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    rng.fill_normal(m.row(i));
  }
  return m;
}

class QrShapes : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(QrShapes, ReconstructsInput) {
  const auto [m, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 131 + n));
  const Matrix a = random_matrix(static_cast<std::size_t>(m),
                                 static_cast<std::size_t>(n), rng);
  const QrResult qr = householder_qr(a);
  const Matrix back = matmul(qr.q, qr.r);
  EXPECT_LT(Matrix::max_abs_diff(back, a), 1e-10);
}

TEST_P(QrShapes, QHasOrthonormalColumns) {
  const auto [m, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m + 997 * n));
  const Matrix a = random_matrix(static_cast<std::size_t>(m),
                                 static_cast<std::size_t>(n), rng);
  const QrResult qr = householder_qr(a);
  EXPECT_LT(orthonormality_defect(qr.q), 1e-10);
}

TEST_P(QrShapes, RIsUpperTriangular) {
  const auto [m, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(3 * m + n));
  const Matrix a = random_matrix(static_cast<std::size_t>(m),
                                 static_cast<std::size_t>(n), rng);
  const QrResult qr = householder_qr(a);
  for (std::size_t i = 0; i < qr.r.rows(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      EXPECT_EQ(qr.r(i, j), 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, QrShapes,
                         ::testing::Values(std::pair{1, 1}, std::pair{3, 3},
                                           std::pair{10, 4}, std::pair{25, 25},
                                           std::pair{64, 16},
                                           std::pair{100, 40}));

TEST(Qr, WideMatrixThrows) {
  EXPECT_THROW(householder_qr(Matrix(2, 5)), CheckError);
}

TEST(Qr, RankDeficientInputStillOrthogonalQ) {
  // Two identical columns: R gets a zero diagonal but Q must stay valid.
  Matrix a(6, 2);
  Rng rng(5);
  rng.fill_normal(a.row(0));
  for (std::size_t i = 0; i < 6; ++i) {
    a(i, 0) = static_cast<double>(i + 1);
    a(i, 1) = 2.0 * static_cast<double>(i + 1);
  }
  const QrResult qr = householder_qr(a);
  const Matrix back = matmul(qr.q, qr.r);
  EXPECT_LT(Matrix::max_abs_diff(back, a), 1e-10);
}

TEST(Orthonormalize, ProducesOrthonormalColumns) {
  Rng rng(7);
  Matrix a = random_matrix(40, 10, rng);
  const std::size_t rank = orthonormalize_columns(a);
  EXPECT_EQ(rank, 10u);
  EXPECT_LT(orthonormality_defect(a), 1e-10);
}

TEST(Orthonormalize, DetectsRankDeficiency) {
  Matrix a(8, 3);
  Rng rng(9);
  // Column 2 = column 0 + column 1.
  for (std::size_t i = 0; i < 8; ++i) {
    a(i, 0) = rng.normal();
    a(i, 1) = rng.normal();
    a(i, 2) = a(i, 0) + a(i, 1);
  }
  const std::size_t rank = orthonormalize_columns(a);
  EXPECT_EQ(rank, 2u);
}

TEST(Orthonormalize, PreservesColumnSpan) {
  Rng rng(11);
  const Matrix original = random_matrix(20, 5, rng);
  Matrix q = original;
  orthonormalize_columns(q);
  // Every original column must be reproducible from Q: c = Q Qᵀ c.
  for (std::size_t j = 0; j < original.cols(); ++j) {
    std::vector<double> c(20);
    for (std::size_t i = 0; i < 20; ++i) c[i] = original(i, j);
    std::vector<double> coeff(5), back(20);
    gemv(q.transposed(), c, coeff);
    gemv(q, coeff, back);
    for (std::size_t i = 0; i < 20; ++i) {
      EXPECT_NEAR(back[i], c[i], 1e-9);
    }
  }
}

TEST(Orthonormalize, ZeroMatrixHasRankZero) {
  Matrix a(5, 3);
  EXPECT_EQ(orthonormalize_columns(a), 0u);
}

TEST(OrthonormalityDefect, IdentityIsZero) {
  EXPECT_EQ(orthonormality_defect(Matrix::identity(4)), 0.0);
}

}  // namespace
}  // namespace arams::linalg
