// FastABOD anomaly scores: cluster interiors score high, isolated points
// score low.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "cluster/abod.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace arams::cluster {
namespace {

using linalg::Matrix;

Matrix cluster_with_outlier(std::size_t n, std::uint64_t seed) {
  Matrix pts(n + 1, 2);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    pts(i, 0) = rng.normal();
    pts(i, 1) = rng.normal();
  }
  pts(n, 0) = 50.0;  // the outlier
  pts(n, 1) = 50.0;
  return pts;
}

TEST(Abod, ValidatesArguments) {
  const Matrix pts = cluster_with_outlier(10, 1);
  AbodConfig config;
  config.k = 1;
  EXPECT_THROW(fast_abod(pts, config), CheckError);
  config.k = 20;
  EXPECT_THROW(fast_abod(pts, config), CheckError);
}

TEST(Abod, OutlierGetsLowestScore) {
  const Matrix pts = cluster_with_outlier(40, 2);
  const auto scores = fast_abod(pts, AbodConfig{8});
  ASSERT_EQ(scores.size(), 41u);
  const auto min_at = static_cast<std::size_t>(
      std::min_element(scores.begin(), scores.end()) - scores.begin());
  EXPECT_EQ(min_at, 40u);
}

TEST(Abod, ScoresAreNonNegative) {
  const Matrix pts = cluster_with_outlier(30, 3);
  const auto scores = fast_abod(pts, AbodConfig{6});
  for (const double s : scores) {
    EXPECT_GE(s, 0.0);
  }
}

TEST(Abod, TwoOutliersBothDetected) {
  Matrix pts(42, 2);
  Rng rng(4);
  for (std::size_t i = 0; i < 40; ++i) {
    pts(i, 0) = rng.normal();
    pts(i, 1) = rng.normal();
  }
  pts(40, 0) = 60.0;
  pts(40, 1) = 0.0;
  pts(41, 0) = -55.0;
  pts(41, 1) = -70.0;
  const auto scores = fast_abod(pts, AbodConfig{8});
  const auto top = top_outliers(scores, 2);
  const std::set<std::size_t> found(top.begin(), top.end());
  EXPECT_TRUE(found.contains(40u));
  EXPECT_TRUE(found.contains(41u));
}

TEST(Abod, DuplicatePointsHandled) {
  Matrix pts(20, 2);
  Rng rng(5);
  for (std::size_t i = 0; i < 18; ++i) {
    pts(i, 0) = rng.normal();
    pts(i, 1) = rng.normal();
  }
  // Two exact duplicates — zero-distance neighbours must not divide by 0.
  pts(18, 0) = pts(0, 0);
  pts(18, 1) = pts(0, 1);
  pts(19, 0) = pts(1, 0);
  pts(19, 1) = pts(1, 1);
  const auto scores = fast_abod(pts, AbodConfig{5});
  for (const double s : scores) {
    EXPECT_FALSE(std::isnan(s));
  }
}

TEST(ExactAbod, AgreesWithFastAbodOnOutlierRanking) {
  const Matrix pts = cluster_with_outlier(25, 6);
  const auto exact = exact_abod(pts);
  const auto fast = fast_abod(pts, AbodConfig{12});
  // Both must rank the planted outlier last (lowest score).
  const auto exact_min = static_cast<std::size_t>(
      std::min_element(exact.begin(), exact.end()) - exact.begin());
  const auto fast_min = static_cast<std::size_t>(
      std::min_element(fast.begin(), fast.end()) - fast.begin());
  EXPECT_EQ(exact_min, 25u);
  EXPECT_EQ(fast_min, 25u);
}

TEST(ExactAbod, NeedsThreePoints) {
  EXPECT_THROW(exact_abod(Matrix(2, 2)), CheckError);
}

TEST(ExactAbod, InteriorScoresExceedOutlierScores) {
  const Matrix pts = cluster_with_outlier(30, 7);
  const auto scores = exact_abod(pts);
  double interior_min = 1e300;
  for (std::size_t i = 0; i < 30; ++i) {
    interior_min = std::min(interior_min, scores[i]);
  }
  EXPECT_GT(interior_min, scores[30]);
}

TEST(TopOutliers, OrderedAscendingByScore) {
  const std::vector<double> scores{5.0, 0.1, 3.0, 0.5, 9.0};
  const auto top = top_outliers(scores, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1u);
  EXPECT_EQ(top[1], 3u);
  EXPECT_EQ(top[2], 2u);
}

TEST(TopOutliers, CountClampedToSize) {
  const std::vector<double> scores{1.0, 2.0};
  EXPECT_EQ(top_outliers(scores, 10).size(), 2u);
}

}  // namespace
}  // namespace arams::cluster
