// Sketch merging (Section IV-C + appendix): mergeability property — the
// merged sketch must satisfy the same covariance bound against the full
// data — and the critical-path accounting that drives Figs. 2–3.

#include <gtest/gtest.h>

#include <cmath>

#include "core/fd.hpp"
#include "core/merge.hpp"
#include "linalg/blas.hpp"
#include "linalg/norms.hpp"
#include "obs/stage_report.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace arams::core {
namespace {

using linalg::Matrix;

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    rng.fill_normal(m.row(i));
  }
  return m;
}

/// Sketches each shard with FD at the given ℓ.
std::vector<Matrix> sketch_shards(const std::vector<Matrix>& shards,
                                  std::size_t ell) {
  std::vector<Matrix> out;
  out.reserve(shards.size());
  for (const auto& shard : shards) {
    FrequentDirections fd(FdConfig{ell, true});
    fd.append_batch(shard);
    fd.compress();
    out.push_back(fd.sketch());
  }
  return out;
}

TEST(Merge, EmptyInputThrows) {
  EXPECT_THROW(merge_group({}, 4), CheckError);
  EXPECT_THROW(serial_merge({}, 4), CheckError);
  EXPECT_THROW(tree_merge({}, 4), CheckError);
  EXPECT_THROW(parallel_tree_merge({}, 4), CheckError);
}

TEST(Merge, SingleSketchPassesThrough) {
  Rng rng(1);
  const Matrix s = random_matrix(3, 5, rng);
  MergeStats stats;
  const Matrix out = serial_merge({s}, 4, &stats);
  EXPECT_EQ(Matrix::max_abs_diff(out, s), 0.0);
  EXPECT_EQ(stats.merge_ops, 0);
}

TEST(Merge, GroupMergeBoundsRows) {
  Rng rng(2);
  std::vector<Matrix> sketches;
  for (int i = 0; i < 3; ++i) {
    sketches.push_back(random_matrix(4, 6, rng));
  }
  const Matrix merged = merge_group(sketches, 4);
  EXPECT_LE(merged.rows(), 4u);
  EXPECT_EQ(merged.cols(), 6u);
}

TEST(Merge, TreeArityBelowTwoThrows) {
  Rng rng(3);
  std::vector<Matrix> s{random_matrix(2, 3, rng), random_matrix(2, 3, rng)};
  EXPECT_THROW(tree_merge(std::move(s), 4, 1), CheckError);
}

class MergeProperty : public ::testing::TestWithParam<int> {};

TEST_P(MergeProperty, MergedSketchKeepsFdGuarantee) {
  const int num_shards = GetParam();
  constexpr std::size_t kEll = 10;
  Rng rng(static_cast<std::uint64_t>(num_shards));
  std::vector<Matrix> shards;
  Matrix full;
  for (int s = 0; s < num_shards; ++s) {
    Matrix shard = random_matrix(40, 12, rng);
    full = Matrix::vstack(full, shard);
    shards.push_back(std::move(shard));
  }
  const auto sketches = sketch_shards(shards, kEll);

  const double bound =
      linalg::frobenius_norm_squared(full) / static_cast<double>(kEll);
  for (const bool tree : {false, true}) {
    auto copies = sketches;
    MergeStats stats;
    const Matrix merged =
        tree ? tree_merge(std::move(copies), kEll, 2, &stats)
             : serial_merge(std::move(copies), kEll, &stats);
    EXPECT_LE(merged.rows(), kEll);
    Rng power(42);
    const double err = linalg::covariance_error(full, merged, power, 150);
    // Merging at most doubles the one-pass bound (each shrink discards
    // ≥ ℓ·δ mass from the *combined* stream); the ‖A‖²_F/ℓ form still
    // holds and is what we assert, with 2× slack for the merge layers.
    EXPECT_LE(err, 2.0 * bound);
  }
}

TEST_P(MergeProperty, TreeAndSerialErrorsComparable) {
  const int num_shards = GetParam();
  if (num_shards < 2) return;
  constexpr std::size_t kEll = 8;
  Rng rng(static_cast<std::uint64_t>(num_shards) * 17);
  std::vector<Matrix> shards;
  Matrix full;
  for (int s = 0; s < num_shards; ++s) {
    Matrix shard = random_matrix(30, 10, rng);
    full = Matrix::vstack(full, shard);
    shards.push_back(std::move(shard));
  }
  const auto sketches = sketch_shards(shards, kEll);

  auto c1 = sketches;
  auto c2 = sketches;
  const Matrix serial = serial_merge(std::move(c1), kEll);
  const Matrix tree = tree_merge(std::move(c2), kEll);
  Rng p1(5), p2(5);
  const double err_serial = linalg::covariance_error(full, serial, p1, 150);
  const double err_tree = linalg::covariance_error(full, tree, p2, 150);
  // Fig. 3's claim: the tree error tracks the serial error closely.
  EXPECT_LT(err_tree, 2.0 * err_serial + 1e-9);
  EXPECT_LT(err_serial, 2.0 * err_tree + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, MergeProperty,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

TEST(Merge, SerialCriticalPathIsLinear) {
  Rng rng(6);
  std::vector<Matrix> sketches;
  for (int i = 0; i < 16; ++i) {
    sketches.push_back(random_matrix(4, 8, rng));
  }
  MergeStats stats;
  serial_merge(std::move(sketches), 4, &stats);
  EXPECT_EQ(stats.merge_ops, 15);
  EXPECT_EQ(stats.critical_path_ops, 15);
}

TEST(Merge, TreeCriticalPathIsLogarithmic) {
  Rng rng(7);
  std::vector<Matrix> sketches;
  for (int i = 0; i < 16; ++i) {
    sketches.push_back(random_matrix(4, 8, rng));
  }
  MergeStats stats;
  tree_merge(std::move(sketches), 4, 2, &stats);
  EXPECT_EQ(stats.merge_ops, 15);      // same total work
  EXPECT_EQ(stats.levels, 4);          // log2(16)
  EXPECT_EQ(stats.critical_path_ops, 4);
}

TEST(Merge, TreeArityReducesLevels) {
  Rng rng(8);
  std::vector<Matrix> sketches;
  for (int i = 0; i < 16; ++i) {
    sketches.push_back(random_matrix(3, 6, rng));
  }
  MergeStats stats4;
  tree_merge(std::move(sketches), 4, 4, &stats4);
  EXPECT_EQ(stats4.levels, 2);  // log4(16)
}

TEST(Merge, OddShardCountHandled) {
  Rng rng(9);
  std::vector<Matrix> sketches;
  for (int i = 0; i < 7; ++i) {
    sketches.push_back(random_matrix(3, 5, rng));
  }
  MergeStats stats;
  const Matrix merged = tree_merge(std::move(sketches), 4, 2, &stats);
  EXPECT_LE(merged.rows(), 4u);
  EXPECT_EQ(stats.levels, 3);  // 7 → 4 → 2 → 1
}

TEST(Merge, ParallelTreeIsBitwiseTreeAtAnyPoolSize) {
  // parallel_tree_merge only reschedules tree_merge's groups; the reduction
  // itself — group membership, stack order, shrink math — is fixed, so the
  // result is bitwise identical inline, on one worker, or on many.
  Rng rng(11);
  std::vector<Matrix> sketches;
  for (int i = 0; i < 7; ++i) {
    sketches.push_back(random_matrix(4, 8, rng));
  }
  auto copy = sketches;
  const Matrix expected = tree_merge(std::move(copy), 4);

  copy = sketches;
  const Matrix inline_run = parallel_tree_merge(std::move(copy), 4);
  EXPECT_EQ(Matrix::max_abs_diff(inline_run, expected), 0.0);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    parallel::ThreadPool pool(threads);
    copy = sketches;
    const Matrix pooled =
        parallel_tree_merge(std::move(copy), 4, 2, nullptr, &pool);
    EXPECT_EQ(Matrix::max_abs_diff(pooled, expected), 0.0)
        << "threads=" << threads;
  }
}

TEST(Merge, ParallelTreeKeepsTreeAccountingAndMeasuresWall) {
  Rng rng(12);
  std::vector<Matrix> sketches;
  for (int i = 0; i < 16; ++i) {
    sketches.push_back(random_matrix(4, 8, rng));
  }
  auto copy = sketches;
  MergeStats tree_stats;
  tree_merge(std::move(copy), 4, 2, &tree_stats);

  copy = sketches;
  MergeStats stats;
  parallel_tree_merge(std::move(copy), 4, 2, &stats);
  EXPECT_EQ(stats.merge_ops, tree_stats.merge_ops);
  EXPECT_EQ(stats.levels, tree_stats.levels);
  EXPECT_EQ(stats.critical_path_ops, tree_stats.critical_path_ops);
  EXPECT_GT(stats.critical_path_seconds_measured, 0.0);
  EXPECT_GT(stats.critical_path_seconds_modeled, 0.0);
  // Inline execution dispatches nothing.
  EXPECT_EQ(stats.parallel_groups, 0);

  // On a multi-worker pool every level with >1 group is dispatched:
  // 16 → 8 + 4 + 2 dispatched groups, the final lone group runs inline.
  parallel::ThreadPool pool(4);
  copy = sketches;
  MergeStats pooled;
  parallel_tree_merge(std::move(copy), 4, 2, &pooled, &pool);
  EXPECT_EQ(pooled.parallel_groups, 14);
  EXPECT_GT(pooled.critical_path_seconds_measured, 0.0);
}

TEST(Merge, LegacyCriticalPathFieldIsTheModeledMakespan) {
  // Pre-existing consumers (virtual_cores, the figure tests) read
  // critical_path_seconds as the slowest-group-per-level model; the
  // measured wall lives in its own field for every strategy.
  Rng rng(13);
  for (const int strategy : {0, 1, 2}) {
    std::vector<Matrix> sketches;
    for (int i = 0; i < 8; ++i) {
      sketches.push_back(random_matrix(4, 8, rng));
    }
    MergeStats stats;
    switch (strategy) {
      case 0:
        serial_merge(std::move(sketches), 4, &stats);
        break;
      case 1:
        tree_merge(std::move(sketches), 4, 2, &stats);
        break;
      default:
        parallel_tree_merge(std::move(sketches), 4, 2, &stats);
        break;
    }
    EXPECT_EQ(stats.critical_path_seconds,
              stats.critical_path_seconds_modeled)
        << "strategy " << strategy;
    EXPECT_GT(stats.critical_path_seconds_measured, 0.0)
        << "strategy " << strategy;
  }
}

TEST(Merge, StatsRoundTripThroughStageReport) {
  Rng rng(14);
  std::vector<Matrix> sketches;
  for (int i = 0; i < 8; ++i) {
    sketches.push_back(random_matrix(4, 8, rng));
  }
  parallel::ThreadPool pool(2);
  MergeStats stats;
  parallel_tree_merge(std::move(sketches), 4, 2, &stats, &pool);

  obs::StageReport report;
  append_to_report(stats, report);
  const MergeStats back = merge_stats_from_report(report);
  EXPECT_EQ(back.merge_ops, stats.merge_ops);
  EXPECT_EQ(back.levels, stats.levels);
  EXPECT_EQ(back.critical_path_ops, stats.critical_path_ops);
  EXPECT_EQ(back.parallel_groups, stats.parallel_groups);
  EXPECT_EQ(back.critical_path_seconds, stats.critical_path_seconds);
  EXPECT_EQ(back.critical_path_seconds_modeled,
            stats.critical_path_seconds_modeled);
  EXPECT_EQ(back.critical_path_seconds_measured,
            stats.critical_path_seconds_measured);
}

TEST(Merge, MergedSketchHasNoZeroRows) {
  Rng rng(10);
  std::vector<Matrix> sketches;
  for (int i = 0; i < 4; ++i) {
    sketches.push_back(random_matrix(5, 7, rng));
  }
  const Matrix merged = tree_merge(std::move(sketches), 5);
  for (std::size_t i = 0; i < merged.rows(); ++i) {
    EXPECT_GT(linalg::norm2(merged.row(i)), 0.0);
  }
}

}  // namespace
}  // namespace arams::core
