// Tests for linalg::Workspace: slot-reference stability, grow-only byte
// accounting, and the headline guarantee — steady-state FD shrink() performs
// ZERO heap allocations.
//
// The allocation check works by overriding global operator new/delete in
// this translation unit only (each gtest binary is its own process, so the
// override is hermetic). The counter is bumped on every allocation path;
// the test warms a FrequentDirections instance past its first few shrink
// cycles, snapshots the counter, streams thousands more rows through, and
// requires the counter not to move.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/fd.hpp"
#include "linalg/matrix.hpp"
#include "linalg/svd.hpp"
#include "linalg/workspace.hpp"
#include "obs/metrics.hpp"
#include "rng/rng.hpp"

namespace {
std::atomic<long> g_heap_allocations{0};
}  // namespace

void* operator new(std::size_t n) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t n, std::align_val_t a) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(a), n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace arams::linalg {
namespace {

TEST(Workspace, SlotReferencesSurviveLaterAcquisitions) {
  Workspace ws;
  Matrix& a = ws.mat(0, 8, 8);
  a.fill(1.0);
  const double* a_data = a.data();
  // Acquiring a much higher slot must not move slot 0 (regression: a
  // vector-backed arena reallocated here and left `a` dangling).
  Matrix& b = ws.mat(5, 16, 16);
  b.fill(2.0);
  EXPECT_EQ(a.data(), a_data);
  EXPECT_EQ(&ws.mat(0, 8, 8), &a);
  EXPECT_DOUBLE_EQ(a(7, 7), 1.0);

  auto v = ws.vec(0, 32);
  const double* v_data = v.data();
  (void)ws.vec(3, 64);
  EXPECT_EQ(ws.vec(0, 32).data(), v_data);
}

TEST(Workspace, BytesGrowOnlyAcrossReshapes) {
  Workspace ws;
  (void)ws.mat(0, 64, 64);
  const std::size_t high_water = ws.capacity_bytes();
  EXPECT_GE(high_water, 64u * 64u * sizeof(double));
  // Shrinking the logical shape must not release capacity...
  (void)ws.mat(0, 4, 4);
  EXPECT_EQ(ws.capacity_bytes(), high_water);
  // ...while the honest logical footprint tracks the live shape.
  EXPECT_EQ(ws.bytes(), 4u * 4u * sizeof(double));
  (void)ws.mat(0, 64, 64);
  EXPECT_EQ(ws.capacity_bytes(), high_water);
  EXPECT_EQ(ws.bytes(), 64u * 64u * sizeof(double));
}

TEST(Workspace, SameShapeSvdCycleIsAllocationFree) {
  Rng rng(11);
  Matrix a(48, 96);
  for (std::size_t i = 0; i < a.rows(); ++i) rng.fill_normal(a.row(i));
  Workspace ws;
  SigmaVt out;
  // Warm-up: first call grows every arena slot and the eig output.
  sigma_vt_svd(a, ws, out);
  sigma_vt_svd(a, ws, out);
  const long before = g_heap_allocations.load();
  for (int i = 0; i < 20; ++i) {
    sigma_vt_svd(a, ws, out);
  }
  EXPECT_EQ(g_heap_allocations.load() - before, 0)
      << "workspace-based sigma_vt_svd allocated at steady state";
}

TEST(Workspace, FdShrinkSteadyStateIsAllocationFree) {
  constexpr std::size_t kEll = 24;
  constexpr std::size_t kDim = 160;
  core::FrequentDirections fd(core::FdConfig{kEll, /*fast=*/true});

  // Pre-generate all input rows so the streaming loop itself owns no
  // allocating code.
  Rng rng(7);
  Matrix warmup(kEll * 20, kDim);
  for (std::size_t i = 0; i < warmup.rows(); ++i) {
    rng.fill_normal(warmup.row(i));
  }
  Matrix steady(kEll * 40, kDim);
  for (std::size_t i = 0; i < steady.rows(); ++i) {
    rng.fill_normal(steady.row(i));
  }

  // ~20 shrink cycles of warm-up: grows the 2ℓ buffer, workspace arenas,
  // SVD outputs and resolves metric registrations.
  for (std::size_t i = 0; i < warmup.rows(); ++i) {
    fd.append(warmup.row(i));
  }

  const long allocs_before = g_heap_allocations.load();
  const double ws_bytes_before =
      obs::metrics().gauge("linalg.workspace_bytes").value();
  for (std::size_t i = 0; i < steady.rows(); ++i) {
    fd.append(steady.row(i));
  }
  const long allocs_after = g_heap_allocations.load();
  const double ws_bytes_after =
      obs::metrics().gauge("linalg.workspace_bytes").value();

  EXPECT_EQ(allocs_after - allocs_before, 0)
      << "steady-state shrink() hit the heap";
  EXPECT_EQ(ws_bytes_before, ws_bytes_after)
      << "workspace arena kept growing after warm-up";
  EXPECT_GT(ws_bytes_after, 0.0) << "workspace gauge never published";
}

}  // namespace
}  // namespace arams::linalg
