// Streaming substrate: sources, throughput meter, streaming monitor.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "obs/metrics.hpp"
#include "stream/monitor.hpp"
#include "stream/source.hpp"
#include "util/check.hpp"

namespace arams::stream {
namespace {

data::BeamProfileConfig small_beam() {
  data::BeamProfileConfig config;
  config.height = 24;
  config.width = 24;
  config.noise = 0.0;
  return config;
}

TEST(Source, BeamProfileEmitsExactlyTotal) {
  BeamProfileSource source(small_beam(), 7, 120.0, 1);
  std::size_t count = 0;
  while (source.next().has_value()) ++count;
  EXPECT_EQ(count, 7u);
}

TEST(Source, TimestampsAdvanceAtRate) {
  BeamProfileSource source(small_beam(), 5, 120.0, 2);
  double prev = -1.0;
  while (auto event = source.next()) {
    EXPECT_GT(event->timestamp_seconds, prev);
    prev = event->timestamp_seconds;
  }
  EXPECT_NEAR(prev, 4.0 / 120.0, 1e-12);
}

TEST(Source, ShotIdsAreSequential) {
  BeamProfileSource source(small_beam(), 4, 60.0, 3);
  std::uint64_t expected = 0;
  while (auto event = source.next()) {
    EXPECT_EQ(event->shot_id, expected++);
  }
}

TEST(Source, DiffractionCarriesTruthLabel) {
  data::DiffractionConfig config;
  config.height = 24;
  config.width = 24;
  DiffractionSource source(config, 10, 120.0, 4);
  while (auto event = source.next()) {
    EXPECT_GE(event->truth_label, 0);
    EXPECT_LT(event->truth_label, 4);
  }
}

TEST(Source, DrainRespectsCount) {
  BeamProfileSource source(small_beam(), 20, 120.0, 5);
  const auto events = drain(source, 8);
  EXPECT_EQ(events.size(), 8u);
  const auto rest = drain(source, 100);
  EXPECT_EQ(rest.size(), 12u);
}

TEST(Source, InvalidRateThrows) {
  EXPECT_THROW(BeamProfileSource(small_beam(), 5, 0.0, 6), CheckError);
}

TEST(ThroughputMeter, ComputesRate) {
  ThroughputMeter meter;
  meter.record(100, 2.0);
  meter.record(50, 1.0);
  EXPECT_DOUBLE_EQ(meter.frames_per_second(), 50.0);
  EXPECT_EQ(meter.total_frames(), 150u);
}

TEST(ThroughputMeter, ZeroTimeGivesZeroRate) {
  const ThroughputMeter meter;
  EXPECT_EQ(meter.frames_per_second(), 0.0);
}

TEST(ThroughputMeter, ZeroDurationRecordsGiveZeroRateNotInf) {
  // Regression: a burst recorded faster than the clock tick must yield a
  // finite rate, never inf/NaN from dividing by zero accumulated seconds.
  ThroughputMeter meter;
  meter.record(100, 0.0);
  EXPECT_EQ(meter.frames_per_second(), 0.0);
  EXPECT_TRUE(std::isfinite(meter.frames_per_second()));
  EXPECT_EQ(meter.total_frames(), 100u);
  meter.record(50, 2.0);  // once real time accumulates, the rate recovers
  EXPECT_DOUBLE_EQ(meter.frames_per_second(), 75.0);
}

MonitorConfig small_monitor() {
  MonitorConfig config;
  config.batch_size = 16;
  config.reservoir_size = 128;
  config.pipeline.sketch.ell = 8;
  config.pipeline.sketch.rank_adaptive = false;
  config.pipeline.sketch.use_sampling = false;
  config.pipeline.pca_components = 5;
  config.pipeline.umap.n_neighbors = 8;
  config.pipeline.umap.n_epochs = 60;
  config.pipeline.preprocess.downsample_factor = 1;
  return config;
}

TEST(Monitor, IngestTriggersUpdateAtBatchBoundary) {
  StreamingMonitor monitor(small_monitor());
  BeamProfileSource source(small_beam(), 33, 120.0, 7);
  int updates = 0;
  while (auto event = source.next()) {
    if (monitor.ingest(*event)) ++updates;
  }
  EXPECT_EQ(updates, 2);  // 33 frames / 16 per batch
  EXPECT_EQ(monitor.sketch_stats().rows_processed, 32);
  monitor.flush();
  EXPECT_EQ(monitor.sketch_stats().rows_processed, 33);
}

TEST(Monitor, SnapshotBeforeDataThrows) {
  StreamingMonitor monitor(small_monitor());
  EXPECT_THROW(monitor.snapshot(), CheckError);
}

TEST(Monitor, SnapshotShapesConsistent) {
  StreamingMonitor monitor(small_monitor());
  BeamProfileSource source(small_beam(), 80, 120.0, 8);
  while (auto event = source.next()) {
    monitor.ingest(*event);
  }
  monitor.flush();
  const SnapshotResult snap = monitor.snapshot();
  EXPECT_EQ(snap.latent.rows(), 80u);
  EXPECT_EQ(snap.latent.cols(), 5u);
  EXPECT_EQ(snap.embedding.rows(), 80u);
  EXPECT_EQ(snap.embedding.cols(), 2u);
  EXPECT_EQ(snap.labels.size(), 80u);
  EXPECT_EQ(snap.shot_ids.size(), 80u);
  EXPECT_EQ(snap.shot_ids.front(), 0u);
  EXPECT_EQ(snap.shot_ids.back(), 79u);
}

TEST(Monitor, ReservoirEvictsOldest) {
  MonitorConfig config = small_monitor();
  config.reservoir_size = 32;
  StreamingMonitor monitor(config);
  BeamProfileSource source(small_beam(), 50, 120.0, 9);
  while (auto event = source.next()) {
    monitor.ingest(*event);
  }
  monitor.flush();
  const SnapshotResult snap = monitor.snapshot();
  EXPECT_EQ(snap.shot_ids.size(), 32u);
  EXPECT_EQ(snap.shot_ids.front(), 18u);  // 50 − 32
  EXPECT_EQ(snap.shot_ids.back(), 49u);
}

TEST(Monitor, IncrementalSnapshotKeepsReferenceCoordinates) {
  StreamingMonitor monitor(small_monitor());
  BeamProfileSource source(small_beam(), 120, 120.0, 20);
  const auto events = drain(source, 120);
  for (std::size_t i = 0; i < 80; ++i) {
    monitor.ingest(events[i]);
  }
  monitor.flush();
  const SnapshotResult full = monitor.snapshot();

  // Stream 20 more shots, refresh incrementally.
  for (std::size_t i = 80; i < 100; ++i) {
    monitor.ingest(events[i]);
  }
  monitor.flush();
  const SnapshotResult inc = monitor.snapshot_incremental();
  EXPECT_EQ(inc.embedding.rows(), 100u);

  // Shots from the full snapshot kept their exact coordinates.
  for (std::size_t i = 0; i < full.shot_ids.size(); ++i) {
    for (std::size_t j = 0; j < inc.shot_ids.size(); ++j) {
      if (inc.shot_ids[j] == full.shot_ids[i]) {
        EXPECT_EQ(inc.embedding(j, 0), full.embedding(i, 0));
        EXPECT_EQ(inc.embedding(j, 1), full.embedding(i, 1));
      }
    }
  }
  EXPECT_EQ(inc.labels.size(), 100u);
}

TEST(Monitor, WarmIndexInsertsInsteadOfRebuilding) {
  // The no-rebuild contract: the reference kNN index is built once by the
  // full snapshot, then grown with insert() on every incremental refresh —
  // builds stays at 1 while inserted_rows tracks the appended shots.
  StreamingMonitor monitor(small_monitor());
  BeamProfileSource source(small_beam(), 140, 120.0, 22);
  const auto events = drain(source, 140);
  for (std::size_t i = 0; i < 80; ++i) {
    monitor.ingest(events[i]);
  }
  monitor.flush();
  EXPECT_EQ(monitor.reference_index(), nullptr);
  (void)monitor.snapshot();
  ASSERT_NE(monitor.reference_index(), nullptr);
  EXPECT_EQ(monitor.reference_index()->stats().builds, 1);
  EXPECT_EQ(monitor.reference_index()->stats().inserted_rows, 0);
  EXPECT_EQ(monitor.reference_index()->size(), 80u);

  for (std::size_t i = 80; i < 110; ++i) {
    monitor.ingest(events[i]);
  }
  monitor.flush();
  (void)monitor.snapshot_incremental();
  EXPECT_EQ(monitor.reference_index()->stats().builds, 1);
  EXPECT_EQ(monitor.reference_index()->stats().inserted_rows, 30);
  EXPECT_EQ(monitor.reference_index()->size(), 110u);

  for (std::size_t i = 110; i < 140; ++i) {
    monitor.ingest(events[i]);
  }
  monitor.flush();
  (void)monitor.snapshot_incremental();
  EXPECT_EQ(monitor.reference_index()->stats().builds, 1);
  EXPECT_EQ(monitor.reference_index()->stats().inserted_rows, 60);
  EXPECT_EQ(monitor.reference_index()->size(), 140u);

  // A full snapshot re-anchors the reference and rebuilds the index (the
  // auto backend re-dispatches on rebuild, so its counters start over:
  // one fresh build, no inserts, reservoir-sized).
  (void)monitor.snapshot();
  EXPECT_EQ(monitor.reference_index()->stats().builds, 1);
  EXPECT_EQ(monitor.reference_index()->stats().inserted_rows, 0);
  EXPECT_EQ(monitor.reference_index()->size(), 128u);
}

TEST(Monitor, F32IngestLaneEndToEnd) {
  // The mixed-precision lane through the streaming monitor: frames narrow
  // at ingest, preprocess in fp32 and queue float rows for the sketcher;
  // the reservoir/error-tracker tail stays fp64, so snapshots keep their
  // shapes and the rows all reach the sketch.
  MonitorConfig config = small_monitor();
  config.pipeline.ingest_precision = PipelineConfig::IngestPrecision::kF32;
  StreamingMonitor monitor(config);
  EXPECT_EQ(obs::metrics().gauge("ingest.precision").value(), 32.0);
  BeamProfileSource source(small_beam(), 80, 120.0, 8);
  int updates = 0;
  while (auto event = source.next()) {
    if (monitor.ingest(*event)) ++updates;
  }
  EXPECT_EQ(updates, 5);  // 80 frames / 16 per batch
  monitor.flush();
  EXPECT_EQ(monitor.sketch_stats().rows_processed, 80);
  const SnapshotResult snap = monitor.snapshot();
  EXPECT_EQ(snap.latent.rows(), 80u);
  EXPECT_EQ(snap.embedding.rows(), 80u);
  EXPECT_EQ(snap.labels.size(), 80u);

  // The NaN firewall runs on the raw fp64 frame before narrowing, so the
  // fp32 lane rejects non-finite shots exactly like the classic lane.
  ShotEvent bad;
  bad.shot_id = 999;
  bad.frame = image::ImageF(8, 8);
  bad.frame.at(3, 3) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(monitor.ingest(bad));
  EXPECT_EQ(monitor.sketch_stats().rows_processed, 80);
}

TEST(Monitor, F32LaneTracksF64ErrorEstimate) {
  // Same stream through both lanes: the operator-facing reconstruction
  // error gauge must agree far inside the lane's drift budget (the inputs
  // differ only by fp32 preprocessing rounding, ~1e-6 relative).
  BeamProfileSource source(small_beam(), 64, 120.0, 30);
  const auto events = drain(source, 64);

  MonitorConfig f32_config = small_monitor();
  f32_config.pipeline.ingest_precision =
      PipelineConfig::IngestPrecision::kF32;
  StreamingMonitor m64(small_monitor());
  StreamingMonitor m32(f32_config);
  for (const auto& event : events) {
    m64.ingest(event);
    m32.ingest(event);
  }
  m64.flush();
  m32.flush();
  const double e64 = m64.sketch_error_estimate();
  const double e32 = m32.sketch_error_estimate();
  EXPECT_GE(e32, 0.0);
  EXPECT_NEAR(e32, e64, 1e-4);
}

TEST(Monitor, IncrementalWithoutReferenceFallsBackToFull) {
  StreamingMonitor monitor(small_monitor());
  BeamProfileSource source(small_beam(), 40, 120.0, 21);
  while (auto event = source.next()) {
    monitor.ingest(*event);
  }
  monitor.flush();
  const SnapshotResult snap = monitor.snapshot_incremental();
  EXPECT_EQ(snap.embedding.rows(), 40u);
}

TEST(Monitor, ThroughputAccountsEveryFrame) {
  StreamingMonitor monitor(small_monitor());
  BeamProfileSource source(small_beam(), 40, 120.0, 10);
  while (auto event = source.next()) {
    monitor.ingest(*event);
  }
  EXPECT_EQ(monitor.throughput().total_frames(), 40u);
  EXPECT_GT(monitor.throughput().frames_per_second(), 0.0);
}

TEST(Monitor, SketchErrorEstimateIsSmallForLowRankStream) {
  StreamingMonitor monitor(small_monitor());
  BeamProfileSource source(small_beam(), 100, 120.0, 22);
  while (auto event = source.next()) {
    monitor.ingest(*event);
  }
  monitor.flush();
  const double err = monitor.sketch_error_estimate();
  EXPECT_GE(err, 0.0);
  // Beam profiles are highly compressible: ℓ=8 captures most of the mass.
  EXPECT_LT(err, 0.5);
}

TEST(Monitor, FrameShapeChangeThrows) {
  StreamingMonitor monitor(small_monitor());
  BeamProfileSource source(small_beam(), 1, 120.0, 11);
  monitor.ingest(*source.next());
  data::BeamProfileConfig other = small_beam();
  other.width = 32;
  BeamProfileSource source2(other, 1, 120.0, 12);
  EXPECT_THROW(monitor.ingest(*source2.next()), CheckError);
}

}  // namespace
}  // namespace arams::stream
