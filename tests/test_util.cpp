// Unit tests for util: check macros, CLI flags, CSV tables, stopwatch.

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"

namespace arams {
namespace {

TEST(Check, PassingCheckDoesNothing) {
  EXPECT_NO_THROW(ARAMS_CHECK(1 + 1 == 2, "math works"));
}

TEST(Check, FailingCheckThrowsCheckError) {
  EXPECT_THROW(ARAMS_CHECK(false, "boom"), CheckError);
}

TEST(Check, MessageContainsExpressionAndText) {
  try {
    ARAMS_CHECK(2 < 1, "custom context");
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("custom context"), std::string::npos);
  }
}

TEST(Cli, DefaultsAreReturnedWithoutParsing) {
  CliFlags flags;
  flags.declare("n", "100", "sample count");
  EXPECT_EQ(flags.get_int("n"), 100);
  EXPECT_FALSE(flags.provided("n"));
}

TEST(Cli, EqualsSyntaxParses) {
  CliFlags flags;
  flags.declare("n", "100", "sample count");
  flags.declare("rate", "0.5", "rate");
  const char* argv[] = {"prog", "--n=250", "--rate=1.25"};
  flags.parse(3, argv);
  EXPECT_EQ(flags.get_int("n"), 250);
  EXPECT_DOUBLE_EQ(flags.get_double("rate"), 1.25);
  EXPECT_TRUE(flags.provided("n"));
}

TEST(Cli, SpaceSyntaxParses) {
  CliFlags flags;
  flags.declare("cores", "1", "core count");
  const char* argv[] = {"prog", "--cores", "64"};
  flags.parse(3, argv);
  EXPECT_EQ(flags.get_int("cores"), 64);
}

TEST(Cli, BareFlagBecomesTrue) {
  CliFlags flags;
  flags.declare("full", "false", "paper-scale run");
  const char* argv[] = {"prog", "--full"};
  flags.parse(2, argv);
  EXPECT_TRUE(flags.get_bool("full"));
}

TEST(Cli, UnknownFlagThrows) {
  CliFlags flags;
  flags.declare("n", "1", "n");
  const char* argv[] = {"prog", "--typo=3"};
  EXPECT_THROW(flags.parse(2, argv), CheckError);
}

TEST(Cli, NonNumericValueThrowsOnTypedGet) {
  CliFlags flags;
  flags.declare("n", "1", "n");
  const char* argv[] = {"prog", "--n=abc"};
  flags.parse(2, argv);
  EXPECT_THROW((void)flags.get_int("n"), CheckError);
}

TEST(Cli, PositionalArgumentsPassThrough) {
  CliFlags flags;
  flags.declare("n", "1", "n");
  const char* argv[] = {"prog", "input.dat", "--n=2", "more"};
  const auto positional = flags.parse(4, argv);
  ASSERT_EQ(positional.size(), 2u);
  EXPECT_EQ(positional[0], "input.dat");
  EXPECT_EQ(positional[1], "more");
}

TEST(Cli, DuplicateDeclarationThrows) {
  CliFlags flags;
  flags.declare("n", "1", "n");
  EXPECT_THROW(flags.declare("n", "2", "again"), CheckError);
}

TEST(Cli, UsageListsFlags) {
  CliFlags flags;
  flags.declare("n", "100", "sample count");
  const std::string usage = flags.usage("prog");
  EXPECT_NE(usage.find("--n"), std::string::npos);
  EXPECT_NE(usage.find("sample count"), std::string::npos);
}

TEST(Table, CsvRoundTrip) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Table, PrettyAlignsColumns) {
  Table t({"name", "v"});
  t.add_row({"longer-name", "1"});
  std::ostringstream os;
  t.write_pretty(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
}

TEST(Table, NumFormatsCompactly) {
  EXPECT_EQ(Table::num(1.5), "1.5");
  EXPECT_EQ(Table::num(42L), "42");
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(sw.millis(), 5.0);
  EXPECT_LT(sw.seconds(), 5.0);
}

TEST(Stopwatch, LapResets) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double first = sw.lap();
  EXPECT_GT(first, 0.0);
  EXPECT_LE(sw.seconds(), first + 1.0);
}

TEST(Accumulator, SumsSections) {
  Accumulator acc;
  acc.add(0.5);
  acc.add(0.25);
  EXPECT_DOUBLE_EQ(acc.total_seconds(), 0.75);
  EXPECT_EQ(acc.count(), 2);
  acc.reset();
  EXPECT_DOUBLE_EQ(acc.total_seconds(), 0.0);
}

TEST(Log, LevelGate) {
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

}  // namespace
}  // namespace arams
