// OPTICS ordering and cluster extraction.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "cluster/metrics.hpp"
#include "cluster/optics.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace arams::cluster {
namespace {

using linalg::Matrix;

/// Three tight blobs at prescribed centers, plus optional far noise points.
Matrix blobs(std::size_t per_cluster, double spread, std::uint64_t seed,
             std::size_t noise_points = 0) {
  const double centers[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  Matrix pts(3 * per_cluster + noise_points, 2);
  Rng rng(seed);
  for (std::size_t i = 0; i < 3 * per_cluster; ++i) {
    const auto c = i / per_cluster;
    pts(i, 0) = centers[c][0] + spread * rng.normal();
    pts(i, 1) = centers[c][1] + spread * rng.normal();
  }
  for (std::size_t i = 0; i < noise_points; ++i) {
    pts(3 * per_cluster + i, 0) = rng.uniform(40.0, 80.0);
    pts(3 * per_cluster + i, 1) = rng.uniform(40.0, 80.0);
  }
  return pts;
}

TEST(Optics, ValidatesArguments) {
  EXPECT_THROW(optics(Matrix(1, 2), OpticsConfig{}), CheckError);
  OpticsConfig bad;
  bad.min_pts = 1;
  EXPECT_THROW(optics(blobs(5, 0.1, 1), bad), CheckError);
}

TEST(Optics, OrderIsAPermutation) {
  const Matrix pts = blobs(10, 0.3, 2);
  const OpticsResult r = optics(pts, OpticsConfig{4});
  std::set<std::size_t> seen(r.order.begin(), r.order.end());
  EXPECT_EQ(seen.size(), pts.rows());
  EXPECT_EQ(r.order.size(), pts.rows());
}

TEST(Optics, ClusterMembersContiguousInOrdering) {
  // With three well-separated blobs, each cluster's points occupy one
  // contiguous run of the ordering (one jump between clusters).
  const Matrix pts = blobs(12, 0.2, 3);
  const OpticsResult r = optics(pts, OpticsConfig{4});
  int jumps = 0;
  for (std::size_t pos = 1; pos < r.order.size(); ++pos) {
    const auto cluster_of = [](std::size_t idx) { return idx / 12; };
    if (cluster_of(r.order[pos]) != cluster_of(r.order[pos - 1])) ++jumps;
  }
  EXPECT_EQ(jumps, 2);
}

TEST(Optics, ReachabilityLowInsideClusters) {
  const Matrix pts = blobs(15, 0.2, 4);
  const OpticsResult r = optics(pts, OpticsConfig{4});
  // Finite reachabilities split into small (intra-cluster) and two large
  // (inter-cluster) values.
  std::vector<double> finite;
  for (const double v : r.reachability) {
    if (!std::isinf(v)) finite.push_back(v);
  }
  std::sort(finite.begin(), finite.end());
  EXPECT_GT(finite.back(), 5.0);              // a jump between blobs
  EXPECT_LT(finite[finite.size() / 2], 1.0);  // median is intra-blob
}

TEST(Optics, MaxEpsLimitsReachability) {
  const Matrix pts = blobs(10, 0.2, 5);
  OpticsConfig config;
  config.min_pts = 3;
  config.max_eps = 2.0;  // blobs are 10 apart: never bridged
  const OpticsResult r = optics(pts, config);
  for (const double v : r.reachability) {
    EXPECT_TRUE(std::isinf(v) || v <= 2.0);
  }
}

TEST(ExtractDbscan, RecoversThreeBlobs) {
  const Matrix pts = blobs(15, 0.2, 6);
  const OpticsResult r = optics(pts, OpticsConfig{4});
  const auto labels = extract_dbscan(r, 2.0);
  EXPECT_EQ(cluster_count(labels), 3u);
  // All points clustered (no noise among tight blobs).
  for (const int l : labels) EXPECT_GE(l, 0);
}

TEST(ExtractDbscan, MarksFarPointsAsNoise) {
  const Matrix pts = blobs(15, 0.2, 7, /*noise_points=*/3);
  OpticsConfig config;
  config.min_pts = 5;
  const OpticsResult r = optics(pts, config);
  const auto labels = extract_dbscan(r, 2.0);
  int noise = 0;
  for (std::size_t i = 45; i < 48; ++i) {
    if (labels[i] == -1) ++noise;
  }
  EXPECT_GE(noise, 2);  // the scattered far points are not dense
}

TEST(ExtractDbscan, TinyEpsMakesEverythingNoise) {
  const Matrix pts = blobs(10, 0.5, 8);
  const OpticsResult r = optics(pts, OpticsConfig{4});
  const auto labels = extract_dbscan(r, 1e-9);
  for (const int l : labels) EXPECT_EQ(l, -1);
}

TEST(ExtractAuto, RecoversBlobsWithoutManualEps) {
  const Matrix pts = blobs(20, 0.25, 9);
  const OpticsResult r = optics(pts, OpticsConfig{5});
  const auto labels = extract_auto(r);
  EXPECT_EQ(cluster_count(labels), 3u);
}

TEST(ExtractXi, FindsAtLeastTheMajorClusters) {
  const Matrix pts = blobs(20, 0.25, 10);
  const OpticsResult r = optics(pts, OpticsConfig{5});
  const auto labels = extract_xi(r, 0.05, 8);
  EXPECT_GE(cluster_count(labels), 3u);
  // Each blob's points overwhelmingly share one label.
  for (int blob = 0; blob < 3; ++blob) {
    std::map<int, int> votes;
    for (std::size_t i = 0; i < 20; ++i) {
      ++votes[labels[static_cast<std::size_t>(blob) * 20 + i]];
    }
    int best = 0;
    for (const auto& [l, c] : votes) best = std::max(best, c);
    EXPECT_GE(best, 15);
  }
}

TEST(ExtractXi, ValidatesXiRange) {
  const Matrix pts = blobs(5, 0.2, 11);
  const OpticsResult r = optics(pts, OpticsConfig{3});
  EXPECT_THROW(extract_xi(r, 0.0), CheckError);
  EXPECT_THROW(extract_xi(r, 1.0), CheckError);
}

TEST(ExtractAuto, ValidatesQuantile) {
  const Matrix pts = blobs(5, 0.2, 12);
  const OpticsResult r = optics(pts, OpticsConfig{3});
  EXPECT_THROW(extract_auto(r, 0.0), CheckError);
  EXPECT_THROW(extract_auto(r, 1.0), CheckError);
}

/// Reference DBSCAN (textbook implementation, written independently of the
/// OPTICS code) used to cross-validate extract_dbscan.
std::vector<int> reference_dbscan(const Matrix& pts, double eps,
                                  std::size_t min_pts) {
  const std::size_t n = pts.rows();
  const auto dist = [&](std::size_t a, std::size_t b) {
    double s = 0.0;
    for (std::size_t c = 0; c < pts.cols(); ++c) {
      const double d = pts(a, c) - pts(b, c);
      s += d * d;
    }
    return std::sqrt(s);
  };
  const auto neighbors = [&](std::size_t p) {
    std::vector<std::size_t> out;
    for (std::size_t q = 0; q < n; ++q) {
      if (dist(p, q) <= eps) out.push_back(q);  // includes p itself
    }
    return out;
  };
  std::vector<int> labels(n, -2);  // -2 = unvisited, -1 = noise
  int cluster = -1;
  for (std::size_t p = 0; p < n; ++p) {
    if (labels[p] != -2) continue;
    auto seeds = neighbors(p);
    if (seeds.size() < min_pts) {
      labels[p] = -1;
      continue;
    }
    ++cluster;
    labels[p] = cluster;
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      const std::size_t q = seeds[i];
      if (labels[q] == -1) labels[q] = cluster;  // border point
      if (labels[q] != -2) continue;
      labels[q] = cluster;
      const auto qn = neighbors(q);
      if (qn.size() >= min_pts) {
        seeds.insert(seeds.end(), qn.begin(), qn.end());
      }
    }
  }
  for (auto& l : labels) {
    if (l == -2) l = -1;
  }
  return labels;
}

class OpticsDbscanCrossCheck : public ::testing::TestWithParam<double> {};

TEST_P(OpticsDbscanCrossCheck, ExtractionMatchesReferenceDbscan) {
  // The OPTICS ε-cut must produce the same partition as a textbook DBSCAN
  // at the same (ε, min_pts) — up to label permutation and the well-known
  // border-point tie (a border point in range of two clusters may be
  // assigned to either). Compare with ARI ≈ 1 on tie-free data.
  const double eps = GetParam();
  const Matrix pts = blobs(15, 0.25, 42);
  constexpr std::size_t kMinPts = 4;
  const OpticsResult r = optics(pts, OpticsConfig{kMinPts});
  const auto from_optics = extract_dbscan(r, eps);
  const auto reference = reference_dbscan(pts, eps, kMinPts);

  // Core points must agree on noise-vs-clustered exactly; border points
  // (non-core) may differ — Ankerst et al. note ExtractDBSCAN deviates
  // from DBSCAN precisely on "some border objects".
  const auto is_core = [&](std::size_t p) {
    std::size_t within = 0;
    for (std::size_t q = 0; q < pts.rows(); ++q) {
      const double d = std::hypot(pts(p, 0) - pts(q, 0),
                                  pts(p, 1) - pts(q, 1));
      if (d <= eps) ++within;  // includes p itself
    }
    return within >= kMinPts;
  };
  for (std::size_t i = 0; i < pts.rows(); ++i) {
    if ((from_optics[i] == -1) != (reference[i] == -1)) {
      EXPECT_FALSE(is_core(i)) << "core point " << i << " disagrees";
    }
  }
  // Same partition of the clustered points.
  std::vector<int> a, b;
  for (std::size_t i = 0; i < pts.rows(); ++i) {
    if (from_optics[i] >= 0 && reference[i] >= 0) {
      a.push_back(from_optics[i]);
      b.push_back(reference[i]);
    }
  }
  if (a.size() >= 2) {
    EXPECT_GT(adjusted_rand_index(a, b), 0.999);
  }
}

INSTANTIATE_TEST_SUITE_P(EpsSweep, OpticsDbscanCrossCheck,
                         ::testing::Values(0.5, 1.0, 2.0, 5.0));

TEST(Optics, OrderingBitwiseStableAcrossEngineModes) {
  // The OPTICS traversal is inherently sequential, so neither enabling the
  // engine's parallel fix-up nor reusing a warm workspace may perturb the
  // result: parallel and serial runs of the same arithmetic are bitwise
  // identical, and repeated runs through one workspace reproduce
  // themselves exactly.
  const Matrix pts = blobs(14, 0.3, 21, /*noise_points=*/4);
  linalg::Workspace ws;
  const OpticsResult serial =
      optics(pts, OpticsConfig{4}, ws, {.allow_parallel = false});
  const OpticsResult parallel =
      optics(pts, OpticsConfig{4}, ws, {.allow_parallel = true});
  const OpticsResult again =
      optics(pts, OpticsConfig{4}, ws, {.allow_parallel = true});
  EXPECT_EQ(parallel.order, serial.order);
  ASSERT_EQ(parallel.reachability.size(), serial.reachability.size());
  for (std::size_t i = 0; i < serial.reachability.size(); ++i) {
    EXPECT_EQ(parallel.reachability[i], serial.reachability[i]) << "at " << i;
    EXPECT_EQ(parallel.core_distance[i], serial.core_distance[i])
        << "at " << i;
    EXPECT_EQ(again.reachability[i], parallel.reachability[i]) << "at " << i;
  }
  EXPECT_EQ(again.order, parallel.order);
}

TEST(Optics, GemmEngineKeepsOrderingAndReachability) {
  // GEMM range queries round distances differently; on data without exact
  // distance ties the traversal makes the same choices, so the ordering is
  // identical and reachabilities agree to rounding.
  const Matrix pts = blobs(14, 0.3, 22, /*noise_points=*/4);
  const OpticsResult ref = optics(pts, OpticsConfig{4});
  linalg::Workspace ws;
  const OpticsResult fast =
      optics(pts, OpticsConfig{4}, ws, {.use_gemm = true});
  EXPECT_EQ(fast.order, ref.order);
  ASSERT_EQ(fast.reachability.size(), ref.reachability.size());
  for (std::size_t i = 0; i < ref.reachability.size(); ++i) {
    if (std::isinf(ref.reachability[i])) {
      EXPECT_TRUE(std::isinf(fast.reachability[i])) << "at " << i;
    } else {
      EXPECT_NEAR(fast.reachability[i], ref.reachability[i], 1e-9)
          << "at " << i;
    }
  }
}

TEST(ClusterCount, IgnoresNoise) {
  EXPECT_EQ(cluster_count({-1, -1, -1}), 0u);
  EXPECT_EQ(cluster_count({0, 1, -1, 1}), 2u);
}

}  // namespace
}  // namespace arams::cluster
