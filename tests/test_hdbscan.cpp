// HDBSCAN*: cluster recovery on blobs, variable-density robustness (the
// case a single OPTICS ε-cut cannot solve), noise handling, membership
// probabilities.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "cluster/hdbscan.hpp"
#include "cluster/metrics.hpp"
#include "cluster/optics.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace arams::cluster {
namespace {

using linalg::Matrix;

Matrix blobs(const std::vector<std::pair<double, double>>& centers,
             const std::vector<double>& spreads,
             const std::vector<std::size_t>& sizes, std::uint64_t seed,
             std::size_t noise_points = 0) {
  std::size_t total = noise_points;
  for (const auto s : sizes) total += s;
  Matrix pts(total, 2);
  Rng rng(seed);
  std::size_t row = 0;
  for (std::size_t c = 0; c < centers.size(); ++c) {
    for (std::size_t i = 0; i < sizes[c]; ++i, ++row) {
      pts(row, 0) = centers[c].first + spreads[c] * rng.normal();
      pts(row, 1) = centers[c].second + spreads[c] * rng.normal();
    }
  }
  for (std::size_t i = 0; i < noise_points; ++i, ++row) {
    pts(row, 0) = rng.uniform(-60.0, 60.0);
    pts(row, 1) = rng.uniform(60.0, 120.0);
  }
  return pts;
}

TEST(Hdbscan, ValidatesArguments) {
  const Matrix pts = blobs({{0, 0}}, {1.0}, {10}, 1);
  HdbscanConfig config;
  config.min_samples = 10;
  EXPECT_THROW(hdbscan(pts, config), CheckError);
  config.min_samples = 3;
  config.min_cluster_size = 1;
  EXPECT_THROW(hdbscan(pts, config), CheckError);
  EXPECT_THROW(hdbscan(Matrix(1, 2), HdbscanConfig{}), CheckError);
}

TEST(Hdbscan, RecoversThreeEqualBlobs) {
  const Matrix pts =
      blobs({{0, 0}, {20, 0}, {0, 20}}, {0.5, 0.5, 0.5}, {30, 30, 30}, 2);
  const HdbscanResult r = hdbscan(pts, HdbscanConfig{5, 10});
  EXPECT_EQ(r.num_clusters, 3u);
  std::vector<int> truth(90);
  for (std::size_t i = 0; i < 90; ++i) truth[i] = static_cast<int>(i / 30);
  EXPECT_GT(adjusted_rand_index(r.labels, truth), 0.95);
}

TEST(Hdbscan, VariableDensityClustersRecovered) {
  // One tight cluster and one diffuse cluster: any single ε-cut either
  // fragments the diffuse one or merges both; HDBSCAN handles it.
  const Matrix pts =
      blobs({{0, 0}, {40, 0}}, {0.3, 4.0}, {40, 40}, 3);
  const HdbscanResult r = hdbscan(pts, HdbscanConfig{5, 10});
  EXPECT_EQ(r.num_clusters, 2u);
  std::vector<int> truth(80);
  for (std::size_t i = 0; i < 80; ++i) truth[i] = static_cast<int>(i / 40);
  EXPECT_GT(adjusted_rand_index(r.labels, truth), 0.9);

  // The contrast: OPTICS with a single quantile cut cannot reach this ARI
  // at the same density contrast without fragmenting the diffuse blob.
  const OpticsResult o = optics(pts, OpticsConfig{5});
  const auto eps_labels = extract_dbscan(o, 0.5);  // tuned for tight blob
  int diffuse_clustered = 0;
  for (std::size_t i = 40; i < 80; ++i) {
    if (eps_labels[i] >= 0) ++diffuse_clustered;
  }
  EXPECT_LT(diffuse_clustered, 40);  // diffuse blob partially lost
}

TEST(Hdbscan, FarNoiseIsLabeledNoise) {
  const Matrix pts =
      blobs({{0, 0}, {30, 0}}, {0.5, 0.5}, {30, 30}, 4, /*noise=*/6);
  const HdbscanResult r = hdbscan(pts, HdbscanConfig{5, 10});
  int noise = 0;
  for (std::size_t i = 60; i < 66; ++i) {
    if (r.labels[i] == -1) ++noise;
  }
  EXPECT_GE(noise, 5);
  EXPECT_EQ(r.num_clusters, 2u);
}

TEST(Hdbscan, AllowSingleClusterKeepsBlobWhole) {
  const Matrix pts = blobs({{0, 0}}, {1.0}, {50}, 5);
  HdbscanConfig config{5, 10};
  config.allow_single_cluster = true;
  const HdbscanResult r = hdbscan(pts, config);
  // With the root allowed to win, a homogeneous blob stays one cluster.
  EXPECT_LE(r.num_clusters, 1u);
}

TEST(Hdbscan, DefaultForbidsTheRootCluster) {
  // Matching the reference implementation: without allow_single_cluster a
  // homogeneous blob is split (or mostly noise) rather than reported as
  // one all-encompassing cluster.
  const Matrix pts = blobs({{0, 0}}, {1.0}, {50}, 5);
  const HdbscanResult r = hdbscan(pts, HdbscanConfig{5, 10});
  EXPECT_NE(r.num_clusters, 1u);
}

TEST(Hdbscan, ProbabilitiesInUnitInterval) {
  const Matrix pts =
      blobs({{0, 0}, {25, 0}}, {0.6, 0.6}, {25, 25}, 6, /*noise=*/4);
  const HdbscanResult r = hdbscan(pts, HdbscanConfig{4, 8});
  for (std::size_t i = 0; i < pts.rows(); ++i) {
    EXPECT_GE(r.probabilities[i], 0.0);
    EXPECT_LE(r.probabilities[i], 1.0 + 1e-12);
    if (r.labels[i] == -1) {
      EXPECT_EQ(r.probabilities[i], 0.0);
    }
  }
}

TEST(Hdbscan, CoreMembersMoreConfidentThanEdgeMembers) {
  // Points near a blob center get higher membership than stragglers.
  Rng rng(7);
  Matrix pts(62, 2);
  for (std::size_t i = 0; i < 30; ++i) {
    pts(i, 0) = 0.2 * rng.normal();
    pts(i, 1) = 0.2 * rng.normal();
  }
  for (std::size_t i = 30; i < 60; ++i) {
    pts(i, 0) = 30.0 + 0.2 * rng.normal();
    pts(i, 1) = 0.2 * rng.normal();
  }
  // Two stragglers attached to cluster 0's fringe.
  pts(60, 0) = 1.4;
  pts(60, 1) = 0.0;
  pts(61, 0) = 0.0;
  pts(61, 1) = 1.4;
  const HdbscanResult r = hdbscan(pts, HdbscanConfig{4, 8});
  ASSERT_EQ(r.num_clusters, 2u);
  if (r.labels[60] >= 0) {
    double core_mean = 0.0;
    for (std::size_t i = 0; i < 30; ++i) core_mean += r.probabilities[i];
    core_mean /= 30.0;
    EXPECT_GT(core_mean, r.probabilities[60]);
  }
}

TEST(Hdbscan, LabelsCoverExactlySelectedClusters) {
  const Matrix pts =
      blobs({{0, 0}, {15, 0}, {0, 15}, {15, 15}}, {0.4, 0.4, 0.4, 0.4},
            {20, 20, 20, 20}, 8);
  const HdbscanResult r = hdbscan(pts, HdbscanConfig{4, 8});
  std::map<int, int> counts;
  for (const int l : r.labels) ++counts[l];
  EXPECT_EQ(r.num_clusters, 4u);
  for (int k = 0; k < 4; ++k) {
    EXPECT_GE(counts[k], 15);
  }
}

TEST(Hdbscan, DeterministicGivenData) {
  const Matrix pts = blobs({{0, 0}, {20, 0}}, {0.5, 0.5}, {25, 25}, 9);
  const HdbscanResult r1 = hdbscan(pts, HdbscanConfig{4, 8});
  const HdbscanResult r2 = hdbscan(pts, HdbscanConfig{4, 8});
  EXPECT_EQ(r1.labels, r2.labels);
}

}  // namespace
}  // namespace arams::cluster
