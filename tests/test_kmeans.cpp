// k-means: recovery, inertia monotonicity, empty-cluster handling,
// determinism, argument validation.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "cluster/kmeans.hpp"
#include "cluster/metrics.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace arams::cluster {
namespace {

using linalg::Matrix;

Matrix blobs3(std::size_t per, double spread, std::uint64_t seed) {
  const double centers[3][2] = {{0, 0}, {12, 0}, {0, 12}};
  Matrix pts(3 * per, 2);
  Rng rng(seed);
  for (std::size_t i = 0; i < 3 * per; ++i) {
    const auto c = i / per;
    pts(i, 0) = centers[c][0] + spread * rng.normal();
    pts(i, 1) = centers[c][1] + spread * rng.normal();
  }
  return pts;
}

TEST(Kmeans, ValidatesArguments) {
  const Matrix pts = blobs3(5, 0.5, 1);
  KmeansConfig config;
  config.k = 0;
  EXPECT_THROW(kmeans(pts, config), CheckError);
  config.k = 100;
  EXPECT_THROW(kmeans(pts, config), CheckError);
  config.k = 2;
  config.restarts = 0;
  EXPECT_THROW(kmeans(pts, config), CheckError);
}

TEST(Kmeans, RecoversThreeBlobs) {
  const Matrix pts = blobs3(40, 0.4, 2);
  KmeansConfig config;
  config.k = 3;
  const KmeansResult r = kmeans(pts, config);
  std::vector<int> truth(120);
  for (std::size_t i = 0; i < 120; ++i) truth[i] = static_cast<int>(i / 40);
  EXPECT_GT(adjusted_rand_index(r.labels, truth), 0.95);
  EXPECT_EQ(r.centroids.rows(), 3u);
}

TEST(Kmeans, CentroidsNearTrueCenters) {
  const Matrix pts = blobs3(60, 0.3, 3);
  KmeansConfig config;
  config.k = 3;
  const KmeansResult r = kmeans(pts, config);
  // Every true center must have a centroid within 0.5.
  const double centers[3][2] = {{0, 0}, {12, 0}, {0, 12}};
  for (const auto& center : centers) {
    double best = 1e300;
    for (std::size_t c = 0; c < 3; ++c) {
      best = std::min(best, std::hypot(r.centroids(c, 0) - center[0],
                                       r.centroids(c, 1) - center[1]));
    }
    EXPECT_LT(best, 0.5);
  }
}

TEST(Kmeans, MoreClustersNeverIncreaseInertia) {
  const Matrix pts = blobs3(30, 0.8, 4);
  double prev = 1e300;
  for (const std::size_t k : {1, 2, 3, 5, 8}) {
    KmeansConfig config;
    config.k = k;
    config.restarts = 6;
    const KmeansResult r = kmeans(pts, config);
    EXPECT_LE(r.inertia, prev * (1.0 + 1e-9));
    prev = r.inertia;
  }
}

TEST(Kmeans, KEqualsNHasZeroInertia) {
  const Matrix pts = blobs3(2, 1.0, 5);  // 6 points
  KmeansConfig config;
  config.k = 6;
  config.restarts = 8;
  const KmeansResult r = kmeans(pts, config);
  EXPECT_NEAR(r.inertia, 0.0, 1e-9);
  const std::set<int> labels(r.labels.begin(), r.labels.end());
  EXPECT_EQ(labels.size(), 6u);
}

TEST(Kmeans, DeterministicGivenSeed) {
  const Matrix pts = blobs3(25, 0.5, 6);
  KmeansConfig config;
  config.k = 3;
  const KmeansResult r1 = kmeans(pts, config);
  const KmeansResult r2 = kmeans(pts, config);
  EXPECT_EQ(r1.labels, r2.labels);
  EXPECT_EQ(r1.inertia, r2.inertia);
}

TEST(Kmeans, IdenticalPointsHandled) {
  Matrix pts(10, 2);  // all at the origin
  KmeansConfig config;
  config.k = 3;
  const KmeansResult r = kmeans(pts, config);
  EXPECT_NEAR(r.inertia, 0.0, 1e-12);
  for (const int l : r.labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 3);
  }
}

TEST(Kmeans, LabelsAlwaysInRange) {
  const Matrix pts = blobs3(15, 1.5, 7);
  KmeansConfig config;
  config.k = 4;
  const KmeansResult r = kmeans(pts, config);
  for (const int l : r.labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 4);
  }
}

}  // namespace
}  // namespace arams::cluster
