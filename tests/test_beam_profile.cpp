// Beam-profile generator: the ground-truth factors must be realized in the
// generated frames (CoM offset, ellipticity, lobes, exotic ring).

#include <gtest/gtest.h>

#include <cmath>

#include "data/beam_profile.hpp"
#include "image/preprocess.hpp"
#include "rng/rng.hpp"

namespace arams::data {
namespace {

BeamProfileConfig quiet_config() {
  BeamProfileConfig config;
  config.noise = 0.0;
  config.exotic_prob = 0.0;
  config.multi_lobe_prob = 0.0;
  config.intensity_jitter = 0.0;
  return config;
}

TEST(BeamProfile, FrameShapeMatchesConfig) {
  BeamProfileConfig config = quiet_config();
  config.height = 48;
  config.width = 32;
  Rng rng(1);
  const BeamProfileSample s = generate_beam_profile(config, rng);
  EXPECT_EQ(s.frame.height(), 48u);
  EXPECT_EQ(s.frame.width(), 32u);
  EXPECT_GT(s.frame.total_intensity(), 0.0);
}

TEST(BeamProfile, Deterministic) {
  const BeamProfileConfig config = quiet_config();
  Rng r1(7), r2(7);
  const auto a = generate_beam_profile(config, r1);
  const auto b = generate_beam_profile(config, r2);
  EXPECT_EQ(a.truth.com_x, b.truth.com_x);
  double diff = 0.0;
  for (std::size_t i = 0; i < a.frame.pixel_count(); ++i) {
    diff = std::max(diff,
                    std::abs(a.frame.pixels()[i] - b.frame.pixels()[i]));
  }
  EXPECT_EQ(diff, 0.0);
}

TEST(BeamProfile, CenterOfMassMatchesTruth) {
  BeamProfileConfig config = quiet_config();
  config.com_jitter = 0.12;
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    const BeamProfileSample s = generate_beam_profile(config, rng);
    const image::CenterOfMass com = image::center_of_mass(s.frame);
    const double expected_x =
        (static_cast<double>(config.width) - 1.0) / 2.0 +
        s.truth.com_x * static_cast<double>(config.width);
    const double expected_y =
        (static_cast<double>(config.height) - 1.0) / 2.0 +
        s.truth.com_y * static_cast<double>(config.height);
    EXPECT_NEAR(com.x, expected_x, 1.5);
    EXPECT_NEAR(com.y, expected_y, 1.5);
  }
}

TEST(BeamProfile, EllipticityElongatesSecondMoment) {
  BeamProfileConfig config = quiet_config();
  config.com_jitter = 0.0;
  config.max_ellipticity = 3.0;
  Rng rng(5);
  // Compare the eigenvalue ratio of the intensity covariance with truth.
  for (int trial = 0; trial < 10; ++trial) {
    const BeamProfileSample s = generate_beam_profile(config, rng);
    const auto& img = s.frame;
    const image::CenterOfMass com = image::center_of_mass(img);
    double sxx = 0.0, syy = 0.0, sxy = 0.0;
    for (std::size_t y = 0; y < img.height(); ++y) {
      for (std::size_t x = 0; x < img.width(); ++x) {
        const double v = img.at(y, x);
        const double dy = static_cast<double>(y) - com.y;
        const double dx = static_cast<double>(x) - com.x;
        sxx += v * dx * dx;
        syy += v * dy * dy;
        sxy += v * dx * dy;
      }
    }
    const double tr = sxx + syy;
    const double det = sxx * syy - sxy * sxy;
    const double disc = std::sqrt(std::max(tr * tr / 4.0 - det, 0.0));
    const double ratio = (tr / 2.0 + disc) / std::max(tr / 2.0 - disc, 1e-12);
    // Second-moment ratio equals ellipticity² for an ideal Gaussian.
    EXPECT_NEAR(std::sqrt(ratio), s.truth.ellipticity,
                0.25 * s.truth.ellipticity);
  }
}

TEST(BeamProfile, MultiLobeSpreadsMass) {
  BeamProfileConfig config = quiet_config();
  config.multi_lobe_prob = 1.0;
  config.com_jitter = 0.0;
  Rng rng(9);
  const BeamProfileSample multi = generate_beam_profile(config, rng);
  EXPECT_GE(multi.truth.lobes, 2);

  config.multi_lobe_prob = 0.0;
  Rng rng2(9);
  const BeamProfileSample single = generate_beam_profile(config, rng2);
  EXPECT_EQ(single.truth.lobes, 1);
}

TEST(BeamProfile, ExoticDonutHasCentralHole) {
  BeamProfileConfig config = quiet_config();
  config.exotic_prob = 1.0;
  config.com_jitter = 0.0;
  Rng rng(11);
  const BeamProfileSample s = generate_beam_profile(config, rng);
  EXPECT_TRUE(s.truth.exotic);
  // Center pixel dimmer than the ring peak.
  const std::size_t cy = config.height / 2;
  const std::size_t cx = config.width / 2;
  EXPECT_LT(s.frame.at(cy, cx), 0.25 * s.frame.max_intensity());
}

TEST(BeamProfile, NoiseIsNonNegative) {
  BeamProfileConfig config = quiet_config();
  config.noise = 0.05;
  Rng rng(13);
  const BeamProfileSample s = generate_beam_profile(config, rng);
  for (const double p : s.frame.pixels()) {
    EXPECT_GE(p, 0.0);
  }
}

TEST(BeamProfile, BatchGeneratesRequestedCount) {
  const BeamProfileConfig config = quiet_config();
  Rng rng(15);
  const auto batch = generate_beam_profiles(config, 25, rng);
  EXPECT_EQ(batch.size(), 25u);
}

TEST(BeamProfile, ExoticFractionRoughlyRespected) {
  BeamProfileConfig config = quiet_config();
  config.exotic_prob = 0.2;
  Rng rng(17);
  const auto batch = generate_beam_profiles(config, 500, rng);
  int exotic = 0;
  for (const auto& s : batch) {
    if (s.truth.exotic) ++exotic;
  }
  EXPECT_NEAR(static_cast<double>(exotic) / 500.0, 0.2, 0.06);
}

}  // namespace
}  // namespace arams::data
