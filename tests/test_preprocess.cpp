// Tests for detector-frame preprocessing (Section VI stage 1).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "image/preprocess.hpp"
#include "util/check.hpp"

namespace arams::image {
namespace {

ImageF gaussian_blob(std::size_t h, std::size_t w, double cy, double cx,
                     double sigma) {
  ImageF img(h, w);
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      const double dy = static_cast<double>(y) - cy;
      const double dx = static_cast<double>(x) - cx;
      img.at(y, x) = std::exp(-(dy * dy + dx * dx) / (2.0 * sigma * sigma));
    }
  }
  return img;
}

TEST(Preprocess, ThresholdZeroesSmallPixels) {
  ImageF img(2, 2);
  img.at(0, 0) = 0.1;
  img.at(0, 1) = 0.9;
  threshold_below(img, 0.5);
  EXPECT_EQ(img.at(0, 0), 0.0);
  EXPECT_EQ(img.at(0, 1), 0.9);
}

TEST(Preprocess, RelativeThresholdScalesWithMax) {
  ImageF img(1, 3);
  img.at(0, 0) = 10.0;
  img.at(0, 1) = 0.5;
  img.at(0, 2) = 2.0;
  threshold_relative(img, 0.1);  // cut below 1.0
  EXPECT_EQ(img.at(0, 1), 0.0);
  EXPECT_EQ(img.at(0, 2), 2.0);
}

TEST(Preprocess, RelativeThresholdDisabledForNonPositiveFraction) {
  ImageF img(1, 2);
  img.at(0, 0) = 0.1;
  threshold_relative(img, 0.0);
  EXPECT_EQ(img.at(0, 0), 0.1);
}

TEST(Preprocess, NormalizeIntensityHitsTarget) {
  ImageF img(2, 2);
  img.at(0, 0) = 2.0;
  img.at(1, 1) = 6.0;
  normalize_intensity(img, 1.0);
  EXPECT_NEAR(img.total_intensity(), 1.0, 1e-12);
}

TEST(Preprocess, NormalizeZeroImageIsNoOp) {
  ImageF img(2, 2);
  normalize_intensity(img);
  EXPECT_EQ(img.total_intensity(), 0.0);
}

TEST(Preprocess, CenterOfMassOfPointMass) {
  ImageF img(5, 7);
  img.at(3, 4) = 2.0;
  const CenterOfMass com = center_of_mass(img);
  EXPECT_DOUBLE_EQ(com.y, 3.0);
  EXPECT_DOUBLE_EQ(com.x, 4.0);
  EXPECT_DOUBLE_EQ(com.mass, 2.0);
}

TEST(Preprocess, CenterOnMassMovesBlobToCenter) {
  ImageF img = gaussian_blob(31, 31, 8.0, 22.0, 2.0);
  center_on_mass(img);
  const CenterOfMass com = center_of_mass(img);
  EXPECT_NEAR(com.y, 15.0, 1.0);
  EXPECT_NEAR(com.x, 15.0, 1.0);
}

TEST(Preprocess, CenterOnMassPreservesMassForInteriorBlob) {
  ImageF img = gaussian_blob(41, 41, 14.0, 26.0, 2.0);
  const double before = img.total_intensity();
  center_on_mass(img);
  EXPECT_NEAR(img.total_intensity(), before, 1e-6 * before);
}

TEST(Preprocess, CenterOnMassZeroImageIsNoOp) {
  ImageF img(5, 5);
  EXPECT_NO_THROW(center_on_mass(img));
}

TEST(Preprocess, CropCenterExtractsMiddle) {
  ImageF img(6, 6);
  img.at(2, 2) = 1.0;  // inside the central 2×2 after crop to 2×2
  const ImageF cropped = crop_center(img, 2, 2);
  EXPECT_EQ(cropped.height(), 2u);
  EXPECT_EQ(cropped.at(0, 0), 1.0);
}

TEST(Preprocess, CropLargerThanImageThrows) {
  const ImageF img(4, 4);
  EXPECT_THROW(crop_center(img, 5, 4), CheckError);
}

TEST(Preprocess, DownsampleBlockMean) {
  ImageF img(2, 4);
  img.at(0, 0) = 1.0;
  img.at(0, 1) = 3.0;
  img.at(1, 0) = 5.0;
  img.at(1, 1) = 7.0;
  const ImageF small = downsample(img, 2);
  EXPECT_EQ(small.height(), 1u);
  EXPECT_EQ(small.width(), 2u);
  EXPECT_DOUBLE_EQ(small.at(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(small.at(0, 1), 0.0);
}

TEST(Preprocess, DownsampleRequiresDivisibility) {
  const ImageF img(3, 4);
  EXPECT_THROW(downsample(img, 2), CheckError);
}

TEST(Preprocess, FullPipelineCentersAndNormalizes) {
  PreprocessConfig config;
  config.threshold_fraction = 0.01;
  config.normalize = true;
  config.center = true;
  ImageF img = gaussian_blob(32, 32, 9.0, 21.0, 2.0);
  const ImageF out = preprocess(img, config);
  EXPECT_NEAR(out.total_intensity(), 1.0, 1e-9);
  const CenterOfMass com = center_of_mass(out);
  EXPECT_NEAR(com.y, 15.5, 1.2);
  EXPECT_NEAR(com.x, 15.5, 1.2);
}

TEST(Preprocess, BatchAppliesToAll) {
  PreprocessConfig config;
  config.threshold_fraction = 0.0;
  config.center = false;
  config.normalize = true;
  std::vector<ImageF> batch(2, ImageF(2, 2));
  batch[0].at(0, 0) = 4.0;
  batch[1].at(1, 1) = 8.0;
  const auto out = preprocess_batch(batch, config);
  EXPECT_NEAR(out[0].total_intensity(), 1.0, 1e-12);
  EXPECT_NEAR(out[1].total_intensity(), 1.0, 1e-12);
}

TEST(Preprocess, DownsampleFactorOneIsIdentity) {
  ImageF img(2, 2);
  img.at(0, 1) = 3.0;
  const ImageF out = downsample(img, 1);
  EXPECT_EQ(out.at(0, 1), 3.0);
}

// ------------------------------------------------ fp32 ingest-lane twins

TEST(PreprocessF32, FullPipelineTracksF64Lane) {
  // Same frame through both lanes under the stock config; the fp32 lane
  // must land within its pinned drift budget of the fp64 reference.
  PreprocessConfig config;
  config.threshold_fraction = 0.01;
  config.normalize = true;
  config.center = true;
  // Blob center chosen so the integer centering shift is far from a
  // .5-rounding boundary — at exactly .5 the two lanes' last-ulp centroid
  // difference would legitimately pick different (adjacent) shifts.
  const ImageF frame = gaussian_blob(32, 32, 9.25, 20.75, 2.0);
  const ImageF out64 = preprocess(frame, config);
  const ImageF32 out32 = preprocess(narrow(frame), config);
  ASSERT_EQ(out32.height(), out64.height());
  ASSERT_EQ(out32.width(), out64.width());
  double max_diff = 0.0;
  for (std::size_t i = 0; i < out64.pixel_count(); ++i) {
    max_diff = std::max(max_diff,
                        std::abs(static_cast<double>(out32.pixels()[i]) -
                                 out64.pixels()[i]));
  }
  EXPECT_LE(max_diff, 1e-5);
  // Both lanes agree on the geometry: centered mass, unit total.
  EXPECT_NEAR(out32.total_intensity(), 1.0, 1e-6);
  const CenterOfMass com = center_of_mass(out32);
  EXPECT_NEAR(com.y, 15.5, 1.2);
  EXPECT_NEAR(com.x, 15.5, 1.2);
}

TEST(PreprocessF32, ThresholdKeepsNaN) {
  ImageF32 img(1, 3);
  img.at(0, 0) = 0.1F;
  img.at(0, 1) = std::numeric_limits<float>::quiet_NaN();
  img.at(0, 2) = 0.9F;
  threshold_below(img, 0.5);
  EXPECT_EQ(img.at(0, 0), 0.0F);
  EXPECT_TRUE(std::isnan(img.at(0, 1)));  // NaN is never "below" the cut
  EXPECT_EQ(img.at(0, 2), 0.9F);
}

TEST(PreprocessF32, NaNTotalSkipsNormalization) {
  ImageF32 img(2, 2);
  img.at(0, 0) = 4.0F;
  img.at(1, 1) = std::numeric_limits<float>::quiet_NaN();
  normalize_intensity(img, 1.0);
  // A NaN total must leave the frame untouched, not smear NaN everywhere.
  EXPECT_EQ(img.at(0, 0), 4.0F);
  EXPECT_EQ(img.at(0, 1), 0.0F);
}

TEST(PreprocessF32, NaNMassSkipsCentering) {
  ImageF32 img(4, 4);
  img.at(0, 0) = 1.0F;
  img.at(3, 3) = std::numeric_limits<float>::quiet_NaN();
  center_on_mass(img);
  // Guarded bail-out: the off-center pixel must not move (lround(NaN)
  // would otherwise produce a garbage shift that blanks the frame).
  EXPECT_EQ(img.at(0, 0), 1.0F);
}

TEST(PreprocessF32, CenterOnMassMatchesF64Shift) {
  // The centering shift is an integer translation, so both lanes must
  // pick the identical offset and move the identical pixels (center again
  // kept off the .5-rounding boundary).
  const ImageF frame = gaussian_blob(16, 16, 4.25, 10.75, 1.5);
  ImageF f64 = frame;
  ImageF32 f32 = narrow(frame);
  center_on_mass(f64);
  center_on_mass(f32);
  for (std::size_t i = 0; i < f64.pixel_count(); ++i) {
    const bool zero64 = f64.pixels()[i] == 0.0;
    const bool zero32 = f32.pixels()[i] == 0.0F;
    EXPECT_EQ(zero64, zero32) << "pixel " << i;
  }
}

TEST(PreprocessF32, CropAndDownsampleMirrorF64) {
  const ImageF frame = gaussian_blob(8, 8, 3.0, 4.0, 2.0);
  const ImageF32 narrow_frame = narrow(frame);
  const ImageF32 cropped = crop_center(narrow_frame, 4, 6);
  EXPECT_EQ(cropped.height(), 4u);
  EXPECT_EQ(cropped.width(), 6u);
  EXPECT_EQ(cropped.at(0, 0), narrow_frame.at(2, 1));
  const ImageF32 down = downsample(narrow_frame, 2);
  const ImageF down64 = downsample(frame, 2);
  EXPECT_EQ(down.height(), 4u);
  for (std::size_t i = 0; i < down.pixel_count(); ++i) {
    EXPECT_NEAR(down.pixels()[i], down64.pixels()[i], 1e-6) << i;
  }
}

}  // namespace
}  // namespace arams::image
