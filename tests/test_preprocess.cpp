// Tests for detector-frame preprocessing (Section VI stage 1).

#include <gtest/gtest.h>

#include <cmath>

#include "image/preprocess.hpp"
#include "util/check.hpp"

namespace arams::image {
namespace {

ImageF gaussian_blob(std::size_t h, std::size_t w, double cy, double cx,
                     double sigma) {
  ImageF img(h, w);
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      const double dy = static_cast<double>(y) - cy;
      const double dx = static_cast<double>(x) - cx;
      img.at(y, x) = std::exp(-(dy * dy + dx * dx) / (2.0 * sigma * sigma));
    }
  }
  return img;
}

TEST(Preprocess, ThresholdZeroesSmallPixels) {
  ImageF img(2, 2);
  img.at(0, 0) = 0.1;
  img.at(0, 1) = 0.9;
  threshold_below(img, 0.5);
  EXPECT_EQ(img.at(0, 0), 0.0);
  EXPECT_EQ(img.at(0, 1), 0.9);
}

TEST(Preprocess, RelativeThresholdScalesWithMax) {
  ImageF img(1, 3);
  img.at(0, 0) = 10.0;
  img.at(0, 1) = 0.5;
  img.at(0, 2) = 2.0;
  threshold_relative(img, 0.1);  // cut below 1.0
  EXPECT_EQ(img.at(0, 1), 0.0);
  EXPECT_EQ(img.at(0, 2), 2.0);
}

TEST(Preprocess, RelativeThresholdDisabledForNonPositiveFraction) {
  ImageF img(1, 2);
  img.at(0, 0) = 0.1;
  threshold_relative(img, 0.0);
  EXPECT_EQ(img.at(0, 0), 0.1);
}

TEST(Preprocess, NormalizeIntensityHitsTarget) {
  ImageF img(2, 2);
  img.at(0, 0) = 2.0;
  img.at(1, 1) = 6.0;
  normalize_intensity(img, 1.0);
  EXPECT_NEAR(img.total_intensity(), 1.0, 1e-12);
}

TEST(Preprocess, NormalizeZeroImageIsNoOp) {
  ImageF img(2, 2);
  normalize_intensity(img);
  EXPECT_EQ(img.total_intensity(), 0.0);
}

TEST(Preprocess, CenterOfMassOfPointMass) {
  ImageF img(5, 7);
  img.at(3, 4) = 2.0;
  const CenterOfMass com = center_of_mass(img);
  EXPECT_DOUBLE_EQ(com.y, 3.0);
  EXPECT_DOUBLE_EQ(com.x, 4.0);
  EXPECT_DOUBLE_EQ(com.mass, 2.0);
}

TEST(Preprocess, CenterOnMassMovesBlobToCenter) {
  ImageF img = gaussian_blob(31, 31, 8.0, 22.0, 2.0);
  center_on_mass(img);
  const CenterOfMass com = center_of_mass(img);
  EXPECT_NEAR(com.y, 15.0, 1.0);
  EXPECT_NEAR(com.x, 15.0, 1.0);
}

TEST(Preprocess, CenterOnMassPreservesMassForInteriorBlob) {
  ImageF img = gaussian_blob(41, 41, 14.0, 26.0, 2.0);
  const double before = img.total_intensity();
  center_on_mass(img);
  EXPECT_NEAR(img.total_intensity(), before, 1e-6 * before);
}

TEST(Preprocess, CenterOnMassZeroImageIsNoOp) {
  ImageF img(5, 5);
  EXPECT_NO_THROW(center_on_mass(img));
}

TEST(Preprocess, CropCenterExtractsMiddle) {
  ImageF img(6, 6);
  img.at(2, 2) = 1.0;  // inside the central 2×2 after crop to 2×2
  const ImageF cropped = crop_center(img, 2, 2);
  EXPECT_EQ(cropped.height(), 2u);
  EXPECT_EQ(cropped.at(0, 0), 1.0);
}

TEST(Preprocess, CropLargerThanImageThrows) {
  const ImageF img(4, 4);
  EXPECT_THROW(crop_center(img, 5, 4), CheckError);
}

TEST(Preprocess, DownsampleBlockMean) {
  ImageF img(2, 4);
  img.at(0, 0) = 1.0;
  img.at(0, 1) = 3.0;
  img.at(1, 0) = 5.0;
  img.at(1, 1) = 7.0;
  const ImageF small = downsample(img, 2);
  EXPECT_EQ(small.height(), 1u);
  EXPECT_EQ(small.width(), 2u);
  EXPECT_DOUBLE_EQ(small.at(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(small.at(0, 1), 0.0);
}

TEST(Preprocess, DownsampleRequiresDivisibility) {
  const ImageF img(3, 4);
  EXPECT_THROW(downsample(img, 2), CheckError);
}

TEST(Preprocess, FullPipelineCentersAndNormalizes) {
  PreprocessConfig config;
  config.threshold_fraction = 0.01;
  config.normalize = true;
  config.center = true;
  ImageF img = gaussian_blob(32, 32, 9.0, 21.0, 2.0);
  const ImageF out = preprocess(img, config);
  EXPECT_NEAR(out.total_intensity(), 1.0, 1e-9);
  const CenterOfMass com = center_of_mass(out);
  EXPECT_NEAR(com.y, 15.5, 1.2);
  EXPECT_NEAR(com.x, 15.5, 1.2);
}

TEST(Preprocess, BatchAppliesToAll) {
  PreprocessConfig config;
  config.threshold_fraction = 0.0;
  config.center = false;
  config.normalize = true;
  std::vector<ImageF> batch(2, ImageF(2, 2));
  batch[0].at(0, 0) = 4.0;
  batch[1].at(1, 1) = 8.0;
  const auto out = preprocess_batch(batch, config);
  EXPECT_NEAR(out[0].total_intensity(), 1.0, 1e-12);
  EXPECT_NEAR(out[1].total_intensity(), 1.0, 1e-12);
}

TEST(Preprocess, DownsampleFactorOneIsIdentity) {
  ImageF img(2, 2);
  img.at(0, 1) = 3.0;
  const ImageF out = downsample(img, 1);
  EXPECT_EQ(out.at(0, 1), 3.0);
}

}  // namespace
}  // namespace arams::image
