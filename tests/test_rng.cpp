// Unit and statistical tests for the RNG: determinism, stream splitting,
// distribution moments.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "rng/rng.hpp"

namespace arams {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 2.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 2.0);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_index(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  constexpr int kN = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.01);
  EXPECT_NEAR(sum2 / kN, 1.0, 0.02);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(17);
  constexpr int kN = 100000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / kN, 5.0, 0.05);
}

TEST(Rng, SplitStreamsAreDecorrelated) {
  Rng base(42);
  Rng s0 = base.split(0);
  Rng s1 = base.split(1);
  int equal = 0;
  for (int i = 0; i < 200; ++i) {
    if (s0.next_u64() == s1.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitIsStableRegardlessOfParentConsumption) {
  Rng a(42);
  Rng b(42);
  b.next_u64();  // consume the parent
  Rng sa = a.split(3);
  Rng sb = b.split(3);
  EXPECT_EQ(sa.next_u64(), sb.next_u64());
}

TEST(Rng, FillNormalFillsEverySlot) {
  Rng rng(3);
  std::vector<double> v(257, -1000.0);
  rng.fill_normal(v);
  int unchanged = 0;
  for (const double x : v) {
    if (x == -1000.0) ++unchanged;
  }
  EXPECT_EQ(unchanged, 0);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(23);
  constexpr int kN = 100000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(29);
  constexpr int kN = 100000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) {
    sum += static_cast<double>(rng.poisson(3.0));
  }
  EXPECT_NEAR(sum / kN, 3.0, 0.1);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(31);
  constexpr int kN = 50000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) {
    const long v = rng.poisson(200.0);
    EXPECT_GE(v, 0);
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(sum / kN, 200.0, 2.0);
}

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng(1);
  EXPECT_EQ(rng.poisson(0.0), 0);
}

}  // namespace
}  // namespace arams
