#!/usr/bin/env bash
# Integration test for the `arams` CLI: generate → info → sketch → pipeline
# round trip in a temp dir. The binary path arrives in $ARAMS_BIN.
set -euo pipefail

BIN="${ARAMS_BIN:?ARAMS_BIN must point at the arams binary}"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

# generate all workload kinds
"$BIN" generate --kind=beam --frames=80 --size=24 \
  --out="$DIR/beam.frames" --truth="$DIR/beam_truth.csv"
"$BIN" generate --kind=diffraction --frames=80 --size=24 --classes=3 \
  --out="$DIR/diff.frames"
"$BIN" generate --kind=speckle --frames=20 --size=24 \
  --out="$DIR/speckle.frames"
"$BIN" info --in="$DIR/speckle.frames" | grep -q "20 frames"
test -s "$DIR/beam.frames"
test -s "$DIR/beam_truth.csv"

# info must describe the bundle
"$BIN" info --in="$DIR/beam.frames" | grep -q "80 frames of 24x24"

# sketch → npy, then info on the npy
"$BIN" sketch --in="$DIR/beam.frames" --ell=16 --out="$DIR/sketch.npy" \
  --report-error | grep -q "relative covariance error"
"$BIN" info --in="$DIR/sketch.npy" | grep -q "float64 matrix"

# compare reports an error within the FD bound
"$BIN" compare --data="$DIR/beam.frames" --sketch="$DIR/sketch.npy" \
  | grep -q "covariance error"

# diag runs the CUSUM monitors and emits frame statistics
"$BIN" diag --in="$DIR/beam.frames" --warmup=20 --mean="$DIR/mean.pgm" \
  --mask-report | grep -q "monitored 80 shots"
test -s "$DIR/mean.pgm"
head -c 2 "$DIR/mean.pgm" | grep -q "P5"

# pipeline with both clusterers, emitting CSV + HTML
"$BIN" pipeline --in="$DIR/diff.frames" --clusterer=optics \
  --center=false --csv="$DIR/o.csv" --html="$DIR/o.html"
"$BIN" pipeline --in="$DIR/diff.frames" --clusterer=hdbscan \
  --center=false --csv="$DIR/h.csv"
"$BIN" pipeline --in="$DIR/diff.frames" --clusterer=kmeans --k=3 \
  --center=false --csv="$DIR/k.csv"
grep -q "shot,x,y,label" "$DIR/k.csv"

# every factory-registered sketcher backend must run the sketch command and
# the full DAQ replay (`monitor`) end-to-end; the listing leads with a
# '#'-prefixed build-info stamp that name consumers must skip
"$BIN" backends | grep -q "rangefinder"
"$BIN" backends | head -1 | grep -q "^# arams version="
test "$("$BIN" backends | grep -vc '^#')" -ge 7
for sk in $("$BIN" backends | grep -v '^#' | cut -f1); do
  "$BIN" sketch --in="$DIR/beam.frames" --ell=12 --sketcher="$sk" \
    --out="$DIR/sk_$sk.npy" >/dev/null
  test -s "$DIR/sk_$sk.npy"
  "$BIN" monitor --in="$DIR/beam.frames" --batch=16 --ell=8 --queue=32 \
    --fps=20000 --sketcher="$sk" | grep -q "monitored 80 shots"
done

# the two-stage pipeline accepts --sketcher too
"$BIN" pipeline --in="$DIR/diff.frames" --clusterer=kmeans --k=3 --ell=8 \
  --sketcher=rangefinder --center=false --csv="$DIR/rf.csv"
grep -q "shot,x,y,label" "$DIR/rf.csv"

# the mixed-precision ingest lane: sketch/pipeline/monitor all accept
# --ingest-precision=fp32, and the fp32 sketch stays close to the fp64 one
"$BIN" sketch --in="$DIR/beam.frames" --ell=16 --ingest-precision=fp32 \
  --out="$DIR/sketch32.npy" | grep -q "fp32 lane, 80 fp32 rows"
"$BIN" compare --data="$DIR/beam.frames" --sketch="$DIR/sketch32.npy" \
  | grep -q "covariance error"
"$BIN" pipeline --in="$DIR/diff.frames" --clusterer=kmeans --k=3 --ell=8 \
  --ingest-precision=fp32 --center=false --csv="$DIR/k32.csv"
grep -q "shot,x,y,label" "$DIR/k32.csv"
test "$(wc -l < "$DIR/k32.csv")" -eq 81
"$BIN" monitor --in="$DIR/beam.frames" --batch=16 --ell=8 --queue=32 \
  --fps=20000 --ingest-precision=fp32 | grep -q "monitored 80 shots"
if "$BIN" sketch --in="$DIR/beam.frames" --ingest-precision=fp16 \
  2>/dev/null; then exit 1; fi

# sketch with each residual estimator
for est in gaussian hutchinson hutchpp; do
  "$BIN" sketch --in="$DIR/beam.frames" --ell=12 --estimator="$est" \
    --out="$DIR/s_$est.npy" >/dev/null
  test -s "$DIR/s_$est.npy"
done
head -1 "$DIR/o.csv" | grep -q "shot,x,y,label"
grep -q "<svg" "$DIR/o.html"
# CSV has one row per shot plus header
test "$(wc -l < "$DIR/h.csv")" -eq 81

# telemetry: the pipeline emits a Chrome trace with every stage span nested
# under pipeline.analyze, and metrics as one JSON object per line
"$BIN" pipeline --in="$DIR/diff.frames" --clusterer=kmeans --k=3 --ell=8 \
  --center=false --trace-out="$DIR/trace.json" \
  --metrics-out="$DIR/metrics.jsonl" | grep -q "Chrome trace written"
python3 - "$DIR/trace.json" "$DIR/metrics.jsonl" <<'EOF'
import json, sys
trace = json.load(open(sys.argv[1]))
events = trace["traceEvents"]
names = {e["name"] for e in events}
stages = {"pipeline.analyze", "pipeline.preprocess", "pipeline.sketch",
          "pipeline.project", "pipeline.embed", "pipeline.cluster"}
missing = stages - names
assert not missing, f"missing stage spans: {missing}"
root = next(e for e in events if e["name"] == "pipeline.analyze")
assert root["args"]["depth"] == 0
for name in stages - {"pipeline.analyze"}:
    event = next(e for e in events if e["name"] == name)
    assert event["args"]["depth"] >= 1, f"{name} not nested"
metrics = [json.loads(line) for line in open(sys.argv[2])]
kinds = {(m["type"], m["name"]) for m in metrics}
assert ("counter", "fd.shrink_count") in kinds, kinds
assert ("histogram", "fd.shrink_seconds") in kinds, kinds
EOF

# --prom-out emits Prometheus text exposition: every metric that appears
# in the JSON-lines dump must have a HELP/TYPE header and a sample line
"$BIN" pipeline --in="$DIR/diff.frames" --clusterer=kmeans --k=3 --ell=8 \
  --center=false --metrics-out="$DIR/metrics2.jsonl" \
  --prom-out="$DIR/arams.prom" | grep -q "Prometheus snapshot written"
python3 - "$DIR/arams.prom" "$DIR/metrics2.jsonl" <<'EOF'
import json, re, sys
text = open(sys.argv[1]).read()
helps = set(re.findall(r"^# HELP (\S+)", text, re.M))
types = dict(re.findall(r"^# TYPE (\S+) (\S+)", text, re.M))
samples = set(re.findall(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{[^}]*\})? ", text, re.M))
assert helps, "no HELP lines in exposition"
assert set(types) == helps, "HELP and TYPE families disagree"
for family, kind in types.items():
    assert kind in {"counter", "gauge", "histogram", "summary", "untyped"}, kind
    # every family must expose at least one sample (histograms/summaries
    # use suffixed series names)
    assert any(s == family or s.startswith(family + "_") for s in samples), \
        f"family {family} has no samples"
assert "arams_build_info" in types and types["arams_build_info"] == "gauge"
info = re.search(r'^arams_build_info\{([^}]*)\} 1$', text, re.M)
assert info, "arams_build_info sample missing or not constant 1"
for label in ("version=", "git=", "compiler=", "march=", "sanitize=",
              "build_type="):
    assert label in info.group(1), f"build_info missing {label}"
# spec conformance: every counter family carries the _total suffix, and
# HELP precedes TYPE for each family
for family, kind in types.items():
    if kind == "counter":
        assert family.endswith("_total"), f"counter {family} lacks _total"
for family in types:
    help_pos = text.index(f"# HELP {family} ")
    type_pos = text.index(f"# TYPE {family} ")
    assert help_pos < type_pos, f"TYPE precedes HELP for {family}"
def prom_name(raw, kind):
    name = "arams_" + re.sub(r"[^a-zA-Z0-9_:]", "_", raw)
    if kind == "counter" and not name.endswith("_total"):
        name += "_total"
    return name
for line in open(sys.argv[2]):
    metric = json.loads(line)
    assert prom_name(metric["name"], metric["type"]) in types, \
        f"{metric['name']} missing from Prometheus exposition"
EOF

# monitor replays a run through the streaming monitor: a NaN burst must
# surface in the health log and the published snapshot must parse
"$BIN" monitor --in="$DIR/beam.frames" --batch=16 --ell=8 --queue=32 \
  --fps=20000 --publish-every=2 --prom-out="$DIR/monitor.prom" \
  --health-log="$DIR/health.jsonl" --nan-from=20 --nan-count=10 \
  --flight-recorder="$DIR/flight.jsonl" --profile-out="$DIR/prof.folded" \
  | grep -q "rejected 10 non-finite frames"
test -s "$DIR/monitor.prom"
grep -q "arams_health_observed_state" "$DIR/monitor.prom"
grep -q "arams_monitor_nonfinite_frames_total 10" "$DIR/monitor.prom"
grep -q "arams_build_info{" "$DIR/monitor.prom"
# the flight journal saw both the ingests and the NaN rejections
test -s "$DIR/flight.jsonl"
grep -q '"code":"frame_ingested"' "$DIR/flight.jsonl"
grep -q '"code":"frame_rejected"' "$DIR/flight.jsonl"
grep -q '"code":"batch_sketched"' "$DIR/flight.jsonl"
test -f "$DIR/prof.folded"
python3 - "$DIR/health.jsonl" <<'EOF'
import json, sys
incidents = [json.loads(line) for line in open(sys.argv[1])]
assert incidents, "NaN burst produced no health incidents"
assert any(i["to"] in ("degraded", "critical") for i in incidents), incidents
for i in incidents:
    assert {"t", "from", "to", "reason"} <= set(i), i
EOF

# unknown command and missing input fail loudly
if "$BIN" frobnicate 2>/dev/null; then exit 1; fi
if "$BIN" sketch --in="$DIR/missing.frames" 2>/dev/null; then exit 1; fi

# doctor rejects garbage and missing files
if "$BIN" doctor "$DIR/missing.txt" 2>/dev/null; then exit 1; fi
echo "not a postmortem" > "$DIR/garbage.txt"
if "$BIN" doctor "$DIR/garbage.txt" 2>/dev/null; then exit 1; fi

echo "cli round trip OK"
