// Tests for the Jacobi SVD and the Gram-trick row-space SVD (the FD
// production kernel).

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"
#include "linalg/blas.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace arams::linalg {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    rng.fill_normal(m.row(i));
  }
  return m;
}

TEST(JacobiSvd, DiagonalKnownValues) {
  const Matrix a{{3.0, 0.0}, {0.0, -4.0}};
  const ThinSvd svd = jacobi_svd(a);
  EXPECT_NEAR(svd.sigma[0], 4.0, 1e-12);
  EXPECT_NEAR(svd.sigma[1], 3.0, 1e-12);
}

TEST(JacobiSvd, EmptyThrows) { EXPECT_THROW(jacobi_svd(Matrix()), CheckError); }

class SvdShapes : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SvdShapes, Reconstructs) {
  const auto [m, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 211 + n));
  const Matrix a = random_matrix(static_cast<std::size_t>(m),
                                 static_cast<std::size_t>(n), rng);
  const ThinSvd svd = jacobi_svd(a);
  const Matrix back = svd_reconstruct(svd);
  EXPECT_LT(Matrix::max_abs_diff(back, a),
            1e-9 * std::max(1.0, frobenius_norm(a)));
}

TEST_P(SvdShapes, FactorsOrthonormal) {
  const auto [m, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 5 + n * 3));
  const Matrix a = random_matrix(static_cast<std::size_t>(m),
                                 static_cast<std::size_t>(n), rng);
  const ThinSvd svd = jacobi_svd(a);
  EXPECT_LT(orthonormality_defect(svd.u), 1e-8);
  EXPECT_LT(orthonormality_defect(svd.vt.transposed()), 1e-8);
}

TEST_P(SvdShapes, SigmaDescendingNonNegative) {
  const auto [m, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m + n * 19));
  const Matrix a = random_matrix(static_cast<std::size_t>(m),
                                 static_cast<std::size_t>(n), rng);
  const ThinSvd svd = jacobi_svd(a);
  for (std::size_t i = 0; i < svd.sigma.size(); ++i) {
    EXPECT_GE(svd.sigma[i], 0.0);
    if (i > 0) {
      EXPECT_GE(svd.sigma[i - 1], svd.sigma[i]);
    }
  }
}

TEST_P(SvdShapes, FrobeniusMassMatchesSigma) {
  const auto [m, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 3 + n * 23));
  const Matrix a = random_matrix(static_cast<std::size_t>(m),
                                 static_cast<std::size_t>(n), rng);
  const ThinSvd svd = jacobi_svd(a);
  double s2 = 0.0;
  for (const double s : svd.sigma) s2 += s * s;
  EXPECT_NEAR(s2, frobenius_norm_squared(a), 1e-8 * std::max(1.0, s2));
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdShapes,
                         ::testing::Values(std::pair{1, 1}, std::pair{4, 4},
                                           std::pair{10, 3}, std::pair{3, 10},
                                           std::pair{20, 20},
                                           std::pair{8, 40},
                                           std::pair{40, 8}));

TEST(GramRowSvd, RequiresShortFat) {
  EXPECT_THROW(gram_row_svd(Matrix(5, 3)), CheckError);
}

class GramSvdShapes : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(GramSvdShapes, MatchesJacobiSigma) {
  const auto [m, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 71 + n));
  const Matrix a = random_matrix(static_cast<std::size_t>(m),
                                 static_cast<std::size_t>(n), rng);
  const RowSpaceSvd gram = gram_row_svd(a);
  const ThinSvd ref = jacobi_svd(a);
  ASSERT_EQ(gram.sigma.size(), static_cast<std::size_t>(m));
  for (std::size_t i = 0; i < gram.sigma.size(); ++i) {
    EXPECT_NEAR(gram.sigma[i], ref.sigma[i],
                1e-7 * std::max(1.0, ref.sigma[0]));
  }
}

TEST_P(GramSvdShapes, WRowsReconstructInput) {
  const auto [m, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 73 + n));
  const Matrix a = random_matrix(static_cast<std::size_t>(m),
                                 static_cast<std::size_t>(n), rng);
  const RowSpaceSvd gram = gram_row_svd(a);
  // A = U · W where W = Uᵀ A.
  const Matrix back = matmul(gram.u, gram.w);
  EXPECT_LT(Matrix::max_abs_diff(back, a), 1e-9 * std::max(1.0, frobenius_norm(a)));
}

TEST_P(GramSvdShapes, WRowsMutuallyOrthogonal) {
  const auto [m, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 79 + n));
  const Matrix a = random_matrix(static_cast<std::size_t>(m),
                                 static_cast<std::size_t>(n), rng);
  const RowSpaceSvd gram = gram_row_svd(a);
  // Row i has norm sigma[i]; distinct rows are orthogonal.
  for (std::size_t i = 0; i < gram.w.rows(); ++i) {
    EXPECT_NEAR(norm2(gram.w.row(i)), gram.sigma[i],
                1e-7 * std::max(1.0, gram.sigma[0]));
    for (std::size_t j = i + 1; j < gram.w.rows(); ++j) {
      EXPECT_NEAR(dot(gram.w.row(i), gram.w.row(j)), 0.0,
                  1e-6 * std::max(1.0, gram.sigma[0] * gram.sigma[0]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GramSvdShapes,
                         ::testing::Values(std::pair{1, 4}, std::pair{2, 10},
                                           std::pair{8, 8}, std::pair{10, 50},
                                           std::pair{32, 100}));

TEST(RightVectors, OrthonormalRows) {
  Rng rng(91);
  const Matrix a = random_matrix(6, 30, rng);
  const RowSpaceSvd gram = gram_row_svd(a);
  const Matrix vt = right_vectors(gram, 4);
  ASSERT_EQ(vt.rows(), 4u);
  EXPECT_LT(orthonormality_defect(vt.transposed()), 1e-8);
}

TEST(RightVectors, SkipsNumericallyZeroDirections) {
  // Rank-1 input: only one right vector should be returned.
  Matrix a(3, 8);
  Rng rng(93);
  std::vector<double> base(8);
  rng.fill_normal(base);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      a(i, j) = static_cast<double>(i + 1) * base[j];
    }
  }
  const RowSpaceSvd gram = gram_row_svd(a);
  const Matrix vt = right_vectors(gram, 3);
  EXPECT_EQ(vt.rows(), 1u);
}

TEST(RandomizedSvd, MatchesExactOnDecayingSpectrum) {
  data::SyntheticConfig config;
  config.n = 80;
  config.d = 40;
  config.spectrum.kind = data::DecayKind::kExponential;
  config.spectrum.count = 20;
  config.spectrum.rate = 0.4;
  Rng rng(201);
  const Matrix a = data::make_low_rank(config, rng);
  const ThinSvd exact = jacobi_svd(a);
  Rng rsvd_rng(202);
  const ThinSvd approx = randomized_svd(a, 6, rsvd_rng);
  ASSERT_EQ(approx.sigma.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(approx.sigma[i], exact.sigma[i], 1e-6 * exact.sigma[0]);
  }
}

TEST(RandomizedSvd, FactorsOrthonormal) {
  Rng rng(203);
  const Matrix a = random_matrix(60, 30, rng);
  Rng rsvd_rng(204);
  const ThinSvd svd = randomized_svd(a, 8, rsvd_rng);
  EXPECT_LT(orthonormality_defect(svd.u), 1e-8);
  EXPECT_LT(orthonormality_defect(svd.vt.transposed()), 1e-8);
}

TEST(RandomizedSvd, LowRankReconstructionNearOptimal) {
  data::SyntheticConfig config;
  config.n = 100;
  config.d = 50;
  config.spectrum.kind = data::DecayKind::kStep;
  config.spectrum.count = 5;
  config.spectrum.step_rank = 5;
  config.spectrum.step_floor = 0.0;
  Rng rng(205);
  const Matrix a = data::make_low_rank(config, rng);
  Rng rsvd_rng(206);
  const ThinSvd svd = randomized_svd(a, 5, rsvd_rng);
  const Matrix back = svd_reconstruct(svd);
  EXPECT_LT(Matrix::max_abs_diff(back, a), 1e-7);
}

TEST(RandomizedSvd, KCappedByDimensions) {
  Rng rng(207);
  const Matrix a = random_matrix(10, 4, rng);
  Rng rsvd_rng(208);
  const ThinSvd svd = randomized_svd(a, 20, rsvd_rng);
  EXPECT_LE(svd.sigma.size(), 4u);
}

TEST(RandomizedSvd, ValidatesArguments) {
  Rng rng(209);
  EXPECT_THROW(randomized_svd(Matrix(), 2, rng), CheckError);
  EXPECT_THROW(randomized_svd(Matrix(3, 3), 0, rng), CheckError);
}

TEST(GramRowSvd, LowRankPlusTinyTailIsStable) {
  // Gram trick squares the condition number; verify small singular values
  // are clamped to zero rather than NaN.
  Matrix a(4, 12);
  Rng rng(95);
  std::vector<double> base(12);
  rng.fill_normal(base);
  for (std::size_t j = 0; j < 12; ++j) {
    a(0, j) = base[j];
    a(1, j) = base[j] * (1.0 + 1e-13);
    a(2, j) = -base[j];
    a(3, j) = 2.0 * base[j];
  }
  const RowSpaceSvd gram = gram_row_svd(a);
  for (const double s : gram.sigma) {
    EXPECT_FALSE(std::isnan(s));
    EXPECT_GE(s, 0.0);
  }
}

}  // namespace
}  // namespace arams::linalg
