// HTML scatter writer: structure of the emitted file, escaping, coloring.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "embed/scatter_html.hpp"
#include "util/check.hpp"

namespace arams::embed {
namespace {

using linalg::Matrix;

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

Matrix small_embedding() {
  Matrix m(4, 2);
  m(0, 0) = 0.0;
  m(0, 1) = 0.0;
  m(1, 0) = 1.0;
  m(1, 1) = 1.0;
  m(2, 0) = -1.0;
  m(2, 1) = 2.0;
  m(3, 0) = 0.5;
  m(3, 1) = -1.0;
  return m;
}

TEST(ScatterHtml, WritesWellFormedDocument) {
  const std::string path = "/tmp/arams_scatter_test.html";
  write_scatter_html(path, small_embedding(), {0, 1, -1, 0}, {});
  const std::string html = read_file(path);
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("</html>"), std::string::npos);
  // One circle per point.
  std::size_t circles = 0, pos = 0;
  while ((pos = html.find("<circle", pos)) != std::string::npos) {
    ++circles;
    ++pos;
  }
  EXPECT_EQ(circles, 4u);
  std::remove(path.c_str());
}

TEST(ScatterHtml, NoiseIsGrey) {
  const std::string path = "/tmp/arams_scatter_noise.html";
  write_scatter_html(path, small_embedding(), {-1, -1, -1, -1}, {});
  const std::string html = read_file(path);
  EXPECT_NE(html.find("#9e9e9e"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ScatterHtml, TooltipsAreEscaped) {
  const std::string path = "/tmp/arams_scatter_tooltip.html";
  write_scatter_html(path, small_embedding(), {},
                     {"a<b", "c&d", "\"quoted\"", "plain"});
  const std::string html = read_file(path);
  EXPECT_NE(html.find("a&lt;b"), std::string::npos);
  EXPECT_NE(html.find("c&amp;d"), std::string::npos);
  EXPECT_NE(html.find("&quot;quoted&quot;"), std::string::npos);
  EXPECT_EQ(html.find("a<b<"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ScatterHtml, TitleAppears) {
  const std::string path = "/tmp/arams_scatter_title.html";
  ScatterConfig config;
  config.title = "Run 510 beam profiles";
  write_scatter_html(path, small_embedding(), {}, {}, config);
  const std::string html = read_file(path);
  EXPECT_NE(html.find("Run 510 beam profiles"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ScatterHtml, DegenerateSingleValueHandled) {
  // All points identical: spans are clamped, no NaN coordinates.
  Matrix m(3, 2);
  const std::string path = "/tmp/arams_scatter_degenerate.html";
  write_scatter_html(path, m, {}, {});
  const std::string html = read_file(path);
  EXPECT_EQ(html.find("nan"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ScatterHtml, ValidatesArguments) {
  EXPECT_THROW(write_scatter_html("/tmp/x.html", Matrix(), {}, {}),
               CheckError);
  EXPECT_THROW(write_scatter_html("/tmp/x.html", Matrix(3, 1), {}, {}),
               CheckError);
  EXPECT_THROW(
      write_scatter_html("/tmp/x.html", small_embedding(), {1, 2}, {}),
      CheckError);
  EXPECT_THROW(write_scatter_html("/nonexistent-dir/x.html",
                                  small_embedding(), {}, {}),
               CheckError);
}

}  // namespace
}  // namespace arams::embed
