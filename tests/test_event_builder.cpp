// Event builder: fusion by shot id, strict ordering, window eviction,
// duplicate/stale handling — the LCLS event-building contract.

#include <gtest/gtest.h>

#include "stream/event_builder.hpp"
#include "util/check.hpp"

namespace arams::stream {
namespace {

image::ImageF tiny_frame(double value) {
  image::ImageF img(2, 2);
  img.at(0, 0) = value;
  return img;
}

TEST(EventBuilder, ValidatesArguments) {
  EXPECT_THROW(EventBuilder({}, 4), CheckError);
  EXPECT_THROW(EventBuilder({"a", "a"}, 4), CheckError);
  EXPECT_THROW(EventBuilder({"a"}, 0), CheckError);
  EventBuilder builder({"cam"}, 4);
  EXPECT_THROW(builder.push("unknown", 0, 0.0, tiny_frame(1)), CheckError);
}

TEST(EventBuilder, SingleDetectorEmitsImmediately) {
  EventBuilder builder({"cam"}, 8);
  const auto out = builder.push("cam", 0, 0.0, tiny_frame(5));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].complete);
  EXPECT_EQ(out[0].shot_id, 0u);
  EXPECT_EQ(out[0].readouts.at("cam").at(0, 0), 5.0);
}

TEST(EventBuilder, WaitsForAllDetectors) {
  EventBuilder builder({"beam", "area"}, 8);
  EXPECT_TRUE(builder.push("beam", 0, 0.0, tiny_frame(1)).empty());
  const auto out = builder.push("area", 0, 0.0, tiny_frame(2));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].complete);
  EXPECT_EQ(out[0].readouts.size(), 2u);
}

TEST(EventBuilder, EmitsInShotOrderEvenWhenLaterShotCompletesFirst) {
  EventBuilder builder({"beam", "area"}, 8);
  // Shot 1 completes before shot 0 does.
  builder.push("beam", 0, 0.0, tiny_frame(1));
  builder.push("beam", 1, 0.01, tiny_frame(2));
  EXPECT_TRUE(builder.push("area", 1, 0.01, tiny_frame(3)).empty());
  const auto out = builder.push("area", 0, 0.0, tiny_frame(4));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].shot_id, 0u);
  EXPECT_EQ(out[1].shot_id, 1u);
  EXPECT_TRUE(out[0].complete);
  EXPECT_TRUE(out[1].complete);
}

TEST(EventBuilder, WindowEvictsOldestIncomplete) {
  EventBuilder builder({"beam", "area"}, 2);
  builder.push("beam", 0, 0.0, tiny_frame(1));  // never completes
  builder.push("beam", 1, 0.1, tiny_frame(2));
  const auto out = builder.push("beam", 2, 0.2, tiny_frame(3));
  ASSERT_EQ(out.size(), 1u);  // shot 0 forced out, incomplete
  EXPECT_EQ(out[0].shot_id, 0u);
  EXPECT_FALSE(out[0].complete);
  EXPECT_EQ(builder.stats().incomplete_events, 1);
  EXPECT_EQ(builder.pending(), 2u);
}

TEST(EventBuilder, StaleReadoutDroppedAfterEmission) {
  EventBuilder builder({"beam"}, 4);
  builder.push("beam", 0, 0.0, tiny_frame(1));  // emitted immediately
  const auto out = builder.push("beam", 0, 0.0, tiny_frame(2));
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(builder.stats().stale_readouts, 1);
}

TEST(EventBuilder, DuplicateReadoutCounted) {
  EventBuilder builder({"beam", "area"}, 4);
  builder.push("beam", 0, 0.0, tiny_frame(1));
  builder.push("beam", 0, 0.0, tiny_frame(2));  // duplicate, dropped
  EXPECT_EQ(builder.stats().duplicate_readouts, 1);
  const auto out = builder.push("area", 0, 0.0, tiny_frame(3));
  ASSERT_EQ(out.size(), 1u);
  // First readout wins.
  EXPECT_EQ(out[0].readouts.at("beam").at(0, 0), 1.0);
}

TEST(EventBuilder, FlushEmitsPendingInOrder) {
  EventBuilder builder({"beam", "area"}, 8);
  builder.push("beam", 3, 0.3, tiny_frame(1));
  builder.push("beam", 1, 0.1, tiny_frame(2));
  builder.push("area", 1, 0.1, tiny_frame(3));  // completes shot 1... but
  // shot 1 is the oldest pending, so it is emitted right away.
  const auto flushed = builder.flush();
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_EQ(flushed[0].shot_id, 3u);
  EXPECT_FALSE(flushed[0].complete);
  EXPECT_EQ(builder.pending(), 0u);
}

TEST(EventBuilder, StatsAddUp) {
  EventBuilder builder({"a", "b"}, 4);
  for (std::uint64_t shot = 0; shot < 10; ++shot) {
    builder.push("a", shot, 0.0, tiny_frame(1));
    if (shot % 2 == 0) {
      builder.push("b", shot, 0.0, tiny_frame(2));
    }
  }
  builder.flush();
  EXPECT_EQ(builder.stats().readouts_seen, 15);
  EXPECT_EQ(builder.stats().complete_events, 5);
  EXPECT_EQ(builder.stats().incomplete_events, 5);
}

TEST(EventBuilder, OutOfOrderArrivalWithinWindowFusesCorrectly) {
  EventBuilder builder({"a", "b"}, 16);
  // Readouts arrive interleaved and out of order across 5 shots.
  const std::uint64_t order_a[] = {4, 2, 0, 3, 1};
  const std::uint64_t order_b[] = {1, 3, 0, 4, 2};
  std::size_t emitted = 0;
  for (int i = 0; i < 5; ++i) {
    emitted += builder.push("a", order_a[i], 0.0, tiny_frame(1)).size();
    emitted += builder.push("b", order_b[i], 0.0, tiny_frame(2)).size();
  }
  emitted += builder.flush().size();
  EXPECT_EQ(emitted, 5u);
  EXPECT_EQ(builder.stats().complete_events, 5);
  EXPECT_EQ(builder.stats().incomplete_events, 0);
}

}  // namespace
}  // namespace arams::stream
