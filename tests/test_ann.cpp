// embed::NeighborSearcher conformance suite — every factory-registered
// backend must honor the contract in ann/searcher.hpp:
//   * factory round-trip: make_searcher(name(), …) rebuilds the same kind
//   * k is validated (1 <= k < n for graphs, 1 <= k <= n for queries),
//     never silently clamped — including the 1- and 2-point edge cases
//   * rpforest recall >= 0.95 @ k = 15 on the beam-profile and diffraction
//     generators, against the exact searcher as ground truth
//   * bitwise determinism under a fixed seed, independent of
//     DistanceOptions::allow_parallel
//   * allocation-free steady-state query()/query_batch()
//   * insert() grows a built index: exact stays bitwise-equal to a full
//     rebuild, rpforest keeps its recall floor without rebuilding
//   * `auto` dispatches by size and reproduces the chosen backend exactly
//
// The allocation check overrides global operator new/delete in this
// translation unit only (each gtest binary is its own process, so the
// override is hermetic) — same pattern as test_sketcher.cpp.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "cluster/abod.hpp"
#include "data/beam_profile.hpp"
#include "data/diffraction.hpp"
#include "embed/ann/searcher.hpp"
#include "embed/knn.hpp"
#include "image/image.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace {
std::atomic<long> g_heap_allocations{0};
}  // namespace

void* operator new(std::size_t n) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t n, std::align_val_t a) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(a), n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace arams::embed {
namespace {

using linalg::Matrix;
using linalg::MatrixView;
using linalg::Workspace;

Matrix random_points(std::size_t n, std::size_t d, std::uint64_t seed) {
  Matrix m(n, d);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) rng.fill_normal(m.row(i));
  return m;
}

/// Beam-profile frames flattened to rows — the realistic geometry the
/// recall pins run on (small frames keep the test fast).
Matrix beam_rows(std::size_t n, std::uint64_t seed) {
  data::BeamProfileConfig config;
  config.height = 16;
  config.width = 16;
  Rng rng(seed);
  const auto samples = data::generate_beam_profiles(config, n, rng);
  std::vector<image::ImageF> frames;
  frames.reserve(n);
  for (const auto& s : samples) frames.push_back(s.frame);
  return image::images_to_matrix(frames);
}

Matrix diffraction_rows(std::size_t n, std::uint64_t seed) {
  data::DiffractionConfig config;
  config.height = 16;
  config.width = 16;
  const data::DiffractionGenerator gen(config);
  Rng rng(seed);
  const auto samples = gen.generate_batch(n, rng);
  std::vector<image::ImageF> frames;
  frames.reserve(n);
  for (const auto& s : samples) frames.push_back(s.frame);
  return image::images_to_matrix(frames);
}

// ---------------------------------------------------------------------------
// Factory

TEST(AnnFactory, RegistryListsAllBackends) {
  const std::vector<std::string> names = registered_searchers();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "exact");
  EXPECT_EQ(names[1], "rpforest");
  EXPECT_EQ(names[2], "auto");
  for (const auto& name : names) {
    EXPECT_TRUE(searcher_registered(name));
    EXPECT_FALSE(searcher_description(name).empty());
  }
  EXPECT_FALSE(searcher_registered("annoy"));
  EXPECT_THROW(searcher_description("annoy"), CheckError);
}

TEST(AnnFactory, NameRoundTrips) {
  for (const auto& name : registered_searchers()) {
    const auto searcher = make_searcher(name, /*seed=*/1);
    EXPECT_EQ(searcher->name(), name);
  }
}

TEST(AnnFactory, RejectsUnknownBackend) {
  EXPECT_THROW(make_searcher("annoy", 1), CheckError);
}

TEST(AnnFactory, RejectsInvalidConfig) {
  AnnConfig config;
  config.backend = "rpforest";
  config.leaf_size = 1;
  EXPECT_FALSE(config.validate().empty());
  EXPECT_THROW(make_searcher(config), CheckError);

  AnnConfig bad_trees;
  bad_trees.num_trees = 0;
  EXPECT_FALSE(bad_trees.validate().empty());

  AnnConfig ok;
  EXPECT_TRUE(ok.validate().empty());
}

// ---------------------------------------------------------------------------
// k validation (satellite bugfix: k >= n used to crash downstream instead of
// failing at the API boundary)

TEST(AnnValidation, GraphRejectsKOutOfRange) {
  for (const auto& name : registered_searchers()) {
    const auto searcher = make_searcher(name, 2);
    Workspace ws;
    searcher->build(random_points(6, 3, 3), ws);
    KnnGraph g;
    EXPECT_THROW(searcher->query_graph(0, ws, g), CheckError);
    EXPECT_THROW(searcher->query_graph(6, ws, g), CheckError);
    EXPECT_THROW(searcher->query_graph(7, ws, g), CheckError);
    searcher->query_graph(5, ws, g);  // k == n-1 is the last valid value
    EXPECT_EQ(g.n, 6u);
    EXPECT_EQ(g.k, 5u);
  }
}

TEST(AnnValidation, ErrorMessagesCarryTheOffendingValues) {
  const auto searcher = make_searcher("exact", 2);
  Workspace ws;
  searcher->build(random_points(4, 2, 4), ws);
  KnnGraph g;
  try {
    searcher->query_graph(4, ws, g);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("k=4"), std::string::npos) << msg;
    EXPECT_NE(msg.find("n=4"), std::string::npos) << msg;
  }
}

TEST(AnnValidation, SinglePointIndex) {
  // A 1-point index can answer external queries with k = 1 but has no
  // valid self-excluded graph at all.
  for (const auto& name : registered_searchers()) {
    const auto searcher = make_searcher(name, 5);
    Workspace ws;
    Matrix one(1, 3);
    one(0, 0) = 1.0;
    one(0, 1) = 2.0;
    one(0, 2) = 2.0;
    searcher->build(one, ws);
    std::vector<std::size_t> nbr;
    std::vector<double> dist;
    const std::vector<double> q = {1.0, 2.0, 5.0};
    searcher->query(q, 1, ws, nbr, dist);
    ASSERT_EQ(nbr.size(), 1u);
    EXPECT_EQ(nbr[0], 0u);
    EXPECT_DOUBLE_EQ(dist[0], 3.0);
    EXPECT_THROW(searcher->query(q, 2, ws, nbr, dist), CheckError);
    KnnGraph g;
    EXPECT_THROW(searcher->query_graph(1, ws, g), CheckError);
  }
}

TEST(AnnValidation, TwoPointIndex) {
  for (const auto& name : registered_searchers()) {
    const auto searcher = make_searcher(name, 6);
    Workspace ws;
    Matrix two(2, 2);
    two(0, 0) = 0.0;
    two(0, 1) = 0.0;
    two(1, 0) = 3.0;
    two(1, 1) = 4.0;
    searcher->build(two, ws);
    KnnGraph g;
    searcher->query_graph(1, ws, g);
    EXPECT_EQ(g.neighbor(0, 0), 1u);
    EXPECT_EQ(g.neighbor(1, 0), 0u);
    EXPECT_DOUBLE_EQ(g.distance(0, 0), 5.0);
    EXPECT_THROW(searcher->query_graph(2, ws, g), CheckError);
  }
}

TEST(AnnValidation, QueryBeforeBuildThrows) {
  for (const auto& name : registered_searchers()) {
    const auto searcher = make_searcher(name, 7);
    Workspace ws;
    KnnGraph g;
    std::vector<double> q = {0.0, 0.0};
    std::vector<std::size_t> nbr;
    std::vector<double> dist;
    EXPECT_THROW(searcher->query_graph(1, ws, g), CheckError);
    EXPECT_THROW(searcher->query(q, 1, ws, nbr, dist), CheckError);
    EXPECT_THROW(
        searcher->insert(MatrixView(q.data(), 1, 2), ws), CheckError);
  }
}

// ---------------------------------------------------------------------------
// Exact backend == the historical brute-force path

TEST(ExactSearcher, GraphMatchesExactKnn) {
  const Matrix pts = random_points(80, 6, 8);
  const auto searcher = make_searcher("exact", 9);
  Workspace ws;
  searcher->build(pts, ws);
  KnnGraph g;
  searcher->query_graph(10, ws, g);
  const KnnGraph reference = exact_knn(pts, 10);
  EXPECT_EQ(g.neighbors, reference.neighbors);
  EXPECT_EQ(g.distances, reference.distances);
}

TEST(ExactSearcher, ExternalQueryFindsTrueNeighbors) {
  const Matrix pts = random_points(60, 4, 10);
  const Matrix queries = random_points(7, 4, 11);
  const auto searcher = make_searcher("exact", 12);
  Workspace ws;
  searcher->build(pts, ws);
  KnnGraph g;
  searcher->query_batch(queries, 3, ws, g);
  ASSERT_EQ(g.n, 7u);
  ASSERT_EQ(g.k, 3u);
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    // Brute-force reference for each query row.
    std::vector<std::pair<double, std::size_t>> all;
    for (std::size_t i = 0; i < pts.rows(); ++i) {
      double d2 = 0.0;
      for (std::size_t c = 0; c < pts.cols(); ++c) {
        const double diff = queries(q, c) - pts(i, c);
        d2 += diff * diff;
      }
      all.emplace_back(d2, i);
    }
    std::sort(all.begin(), all.end());
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(g.neighbor(q, j), all[j].second);
      // The engine expands ||q||² − 2q·p + ||p||² via GEMM; the scalar loop
      // here rounds differently, so compare to a few ulps, not bitwise.
      EXPECT_NEAR(g.distance(q, j), std::sqrt(all[j].first), 1e-12);
    }
    for (std::size_t j = 1; j < 3; ++j) {
      EXPECT_GE(g.distance(q, j), g.distance(q, j - 1));
    }
  }
}

TEST(ExactSearcher, SqDistsToCoversIndex) {
  const Matrix pts = random_points(30, 5, 13);
  const auto searcher = make_searcher("exact", 14);
  Workspace ws;
  searcher->build(pts, ws);
  std::vector<double> d2(30);
  const auto q = pts.row(4);
  searcher->sq_dists_to(q, ws, d2);
  EXPECT_DOUBLE_EQ(d2[4], 0.0);
  for (std::size_t i = 0; i < 30; ++i) {
    double want = 0.0;
    for (std::size_t c = 0; c < 5; ++c) {
      const double diff = q[c] - pts(i, c);
      want += diff * diff;
    }
    EXPECT_NEAR(d2[i], want, 1e-9 * (1.0 + want));
  }
  std::vector<double> wrong(29);
  EXPECT_THROW(searcher->sq_dists_to(q, ws, wrong), CheckError);
}

// ---------------------------------------------------------------------------
// rpforest recall pins

double graph_recall_vs_exact(const Matrix& pts, std::size_t k,
                             std::uint64_t seed) {
  Workspace ws;
  const auto exact = make_searcher("exact", seed);
  exact->build(pts, ws);
  KnnGraph truth;
  exact->query_graph(k, ws, truth);

  const auto forest = make_searcher("rpforest", seed);
  forest->build(pts, ws);
  KnnGraph approx;
  forest->query_graph(k, ws, approx);
  return knn_recall(approx, truth);
}

TEST(RpForest, RecallOnBeamProfiles) {
  const Matrix pts = beam_rows(600, 15);
  EXPECT_GE(graph_recall_vs_exact(pts, 15, 2024), 0.95);
}

TEST(RpForest, RecallOnDiffractionFrames) {
  const Matrix pts = diffraction_rows(600, 16);
  EXPECT_GE(graph_recall_vs_exact(pts, 15, 2024), 0.95);
}

TEST(RpForest, RecallOnGaussianClouds) {
  const Matrix pts = random_points(800, 12, 17);
  EXPECT_GE(graph_recall_vs_exact(pts, 15, 99), 0.95);
}

TEST(RpForest, SinglePointQueriesFindTrueNeighbors) {
  const Matrix pts = beam_rows(400, 18);
  Workspace ws;
  const auto exact = make_searcher("exact", 1);
  const auto forest = make_searcher("rpforest", 1);
  exact->build(pts, ws);
  forest->build(pts, ws);
  const Matrix queries = beam_rows(40, 19);
  KnnGraph truth;
  exact->query_batch(queries, 10, ws, truth);
  KnnGraph approx;
  forest->query_batch(queries, 10, ws, approx);
  ASSERT_EQ(approx.n, truth.n);
  ASSERT_EQ(approx.k, truth.k);
  // Set-overlap recall over the batch.
  std::size_t hits = 0;
  for (std::size_t i = 0; i < truth.n; ++i) {
    for (std::size_t j = 0; j < truth.k; ++j) {
      for (std::size_t l = 0; l < truth.k; ++l) {
        if (approx.neighbor(i, l) == truth.neighbor(i, j)) {
          ++hits;
          break;
        }
      }
    }
  }
  const double recall =
      static_cast<double>(hits) / static_cast<double>(truth.n * truth.k);
  EXPECT_GE(recall, 0.95);
}

TEST(RpForest, ScoresFarFewerCandidatesThanExact) {
  const Matrix pts = random_points(800, 12, 20);
  Workspace ws;
  const auto forest = make_searcher("rpforest", 21);
  forest->build(pts, ws);
  KnnGraph g;
  forest->query_graph(15, ws, g);
  // The whole point of the forest: candidate work far below the n² wall.
  EXPECT_LT(forest->stats().candidates_scored,
            static_cast<long>(pts.rows() * pts.rows() / 2));
  EXPECT_GT(forest->stats().candidates_scored, 0);
}

// ---------------------------------------------------------------------------
// Determinism

TEST(AnnDeterminism, GraphBitwiseStableAcrossParallelModes) {
  const Matrix pts = random_points(500, 8, 22);
  for (const auto& name : registered_searchers()) {
    KnnGraph serial, parallel;
    {
      Workspace ws;
      const auto searcher = make_searcher(name, 23);
      searcher->build(pts, ws, DistanceOptions{.allow_parallel = false});
      searcher->query_graph(12, ws, serial,
                            DistanceOptions{.allow_parallel = false});
    }
    {
      Workspace ws;
      const auto searcher = make_searcher(name, 23);
      searcher->build(pts, ws, DistanceOptions{.allow_parallel = true});
      searcher->query_graph(12, ws, parallel,
                            DistanceOptions{.allow_parallel = true});
    }
    EXPECT_EQ(serial.neighbors, parallel.neighbors) << name;
    EXPECT_EQ(serial.distances, parallel.distances) << name;
  }
}

TEST(AnnDeterminism, RepeatedBuildsReproduceBitwise) {
  const Matrix pts = random_points(400, 6, 24);
  const Matrix queries = random_points(30, 6, 25);
  for (const auto& name : registered_searchers()) {
    KnnGraph a, b;
    for (KnnGraph* out : {&a, &b}) {
      Workspace ws;
      const auto searcher = make_searcher(name, 26);
      searcher->build(pts, ws);
      searcher->query_batch(queries, 9, ws, *out);
    }
    EXPECT_EQ(a.neighbors, b.neighbors) << name;
    EXPECT_EQ(a.distances, b.distances) << name;
  }
}

// ---------------------------------------------------------------------------
// Allocation-free steady state

TEST(AnnAllocation, SteadyStateQueriesAreAllocationFree) {
  const Matrix pts = random_points(600, 8, 27);
  const Matrix queries = random_points(64, 8, 28);
  const std::vector<double> single(queries.row(0).begin(),
                                   queries.row(0).end());
  for (const auto& name : registered_searchers()) {
    Workspace ws;
    const auto searcher = make_searcher(name, 29);
    searcher->build(pts, ws);
    KnnGraph out;
    std::vector<std::size_t> nbr;
    std::vector<double> dist;
    // Warm-up: sizes the grow-only scratch, the workspace slots and the
    // output containers.
    searcher->query_batch(queries, 15, ws, out);
    searcher->query(single, 15, ws, nbr, dist);
    const long before = g_heap_allocations.load(std::memory_order_relaxed);
    for (int pass = 0; pass < 3; ++pass) {
      searcher->query_batch(queries, 15, ws, out);
      searcher->query(single, 15, ws, nbr, dist);
    }
    const long after = g_heap_allocations.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0) << name;
  }
}

// ---------------------------------------------------------------------------
// Incremental insert

TEST(AnnInsert, ExactMatchesFullRebuildBitwise) {
  const Matrix all = random_points(90, 5, 30);
  Workspace ws;
  const auto grown = make_searcher("exact", 31);
  grown->build(all.slice_rows(0, 60), ws);
  grown->insert(MatrixView::rows_of(all, 60, 90), ws);
  const auto rebuilt = make_searcher("exact", 31);
  rebuilt->build(all, ws);
  ASSERT_EQ(grown->size(), 90u);
  KnnGraph a, b;
  grown->query_graph(8, ws, a);
  rebuilt->query_graph(8, ws, b);
  EXPECT_EQ(a.neighbors, b.neighbors);
  EXPECT_EQ(a.distances, b.distances);
}

TEST(AnnInsert, RpForestKeepsRecallWithoutRebuilding) {
  const Matrix all = beam_rows(500, 32);
  Workspace ws;
  const auto forest = make_searcher("rpforest", 33);
  forest->build(all.slice_rows(0, 350), ws);
  forest->insert(MatrixView::rows_of(all, 350, 500), ws);
  ASSERT_EQ(forest->size(), 500u);
  EXPECT_EQ(forest->stats().builds, 1);
  EXPECT_EQ(forest->stats().inserted_rows, 150);

  const auto exact = make_searcher("exact", 33);
  exact->build(all, ws);
  KnnGraph truth, approx;
  exact->query_graph(15, ws, truth);
  forest->query_graph(15, ws, approx);
  EXPECT_GE(knn_recall(approx, truth), 0.95);
}

TEST(AnnInsert, InsertedPointsAreImmediatelyQueryable) {
  const Matrix base = random_points(100, 4, 34);
  const Matrix fresh = random_points(10, 4, 35);
  for (const auto& name : registered_searchers()) {
    Workspace ws;
    const auto searcher = make_searcher(name, 36);
    searcher->build(base, ws);
    searcher->insert(fresh, ws);
    std::vector<std::size_t> nbr;
    std::vector<double> dist;
    for (std::size_t i = 0; i < fresh.rows(); ++i) {
      searcher->query(fresh.row(i), 1, ws, nbr, dist);
      EXPECT_EQ(nbr[0], 100 + i) << name;
      EXPECT_DOUBLE_EQ(dist[0], 0.0) << name;
    }
  }
}

TEST(AnnInsert, DimensionMismatchThrows) {
  const auto searcher = make_searcher("exact", 37);
  Workspace ws;
  searcher->build(random_points(10, 4, 38), ws);
  const Matrix wrong = random_points(2, 3, 39);
  EXPECT_THROW(searcher->insert(wrong, ws), CheckError);
}

// ---------------------------------------------------------------------------
// Auto dispatch

TEST(AutoSearcher, DispatchesExactBelowThreshold) {
  const Matrix pts = random_points(200, 6, 40);
  AnnConfig config;
  config.backend = "auto";
  config.exact_threshold = 200;  // n <= threshold → exact
  config.seed = 41;
  Workspace ws;
  const auto dispatcher = make_searcher(config);
  dispatcher->build(pts, ws);
  KnnGraph got;
  dispatcher->query_graph(7, ws, got);

  AnnConfig exact_config = config;
  exact_config.backend = "exact";
  const auto exact = make_searcher(exact_config);
  exact->build(pts, ws);
  KnnGraph want;
  exact->query_graph(7, ws, want);
  EXPECT_EQ(got.neighbors, want.neighbors);
  EXPECT_EQ(got.distances, want.distances);
}

TEST(AutoSearcher, DispatchesForestAboveThreshold) {
  const Matrix pts = random_points(200, 6, 42);
  AnnConfig config;
  config.backend = "auto";
  config.exact_threshold = 199;  // n > threshold → rpforest
  config.seed = 43;
  Workspace ws;
  const auto dispatcher = make_searcher(config);
  dispatcher->build(pts, ws);
  KnnGraph got;
  dispatcher->query_graph(7, ws, got);

  AnnConfig forest_config = config;
  forest_config.backend = "rpforest";
  const auto forest = make_searcher(forest_config);
  forest->build(pts, ws);
  KnnGraph want;
  forest->query_graph(7, ws, want);
  EXPECT_EQ(got.neighbors, want.neighbors);
  EXPECT_EQ(got.distances, want.distances);
}

// ---------------------------------------------------------------------------
// Stats and reporting

TEST(AnnStatsCounters, TrackBuildsInsertsAndQueries) {
  const Matrix pts = random_points(50, 4, 44);
  Workspace ws;
  const auto searcher = make_searcher("exact", 45);
  searcher->build(pts, ws);
  searcher->insert(random_points(5, 4, 46), ws);
  KnnGraph g;
  searcher->query_graph(6, ws, g);
  const AnnStats& s = searcher->stats();
  EXPECT_EQ(s.builds, 1);
  EXPECT_EQ(s.inserted_rows, 5);
  EXPECT_EQ(s.query_rows, 55);
  EXPECT_GT(s.candidates_scored, 0);

  obs::StageReport report;
  searcher->report(report);
  EXPECT_EQ(report.counter("ann_builds"), 1);
  EXPECT_EQ(report.counter("ann_inserted_rows"), 5);
  EXPECT_EQ(report.counter("ann_query_rows"), 55);
}

// ---------------------------------------------------------------------------
// Consumers honour the configured backend

TEST(AnnConsumers, AbodAcceptsConfiguredBackend) {
  const Matrix pts = random_points(120, 3, 47);
  cluster::AbodConfig exact_abod;
  exact_abod.k = 8;
  exact_abod.knn.backend = "exact";
  cluster::AbodConfig forest_abod;
  forest_abod.k = 8;
  forest_abod.knn.backend = "rpforest";
  const std::vector<double> a = cluster::fast_abod(pts, exact_abod);
  const std::vector<double> b = cluster::fast_abod(pts, forest_abod);
  ASSERT_EQ(a.size(), b.size());
  // High-recall neighbourhoods give near-identical ABOF scores; what
  // matters here is that the backend plumbs through and stays sane.
  for (double score : b) {
    EXPECT_TRUE(std::isfinite(score));
    EXPECT_GE(score, 0.0);
  }
}

}  // namespace
}  // namespace arams::embed
