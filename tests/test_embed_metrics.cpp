// Embedding metrics: trustworthiness and axis–factor correlation.

#include <gtest/gtest.h>

#include <cmath>

#include "embed/metrics.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace arams::embed {
namespace {

using linalg::Matrix;

TEST(Trustworthiness, PerfectForIdentityEmbedding) {
  Matrix pts(30, 2);
  Rng rng(1);
  for (std::size_t i = 0; i < 30; ++i) rng.fill_normal(pts.row(i));
  EXPECT_NEAR(trustworthiness(pts, pts, 5), 1.0, 1e-12);
}

TEST(Trustworthiness, PerfectForIsometry) {
  Matrix pts(25, 2);
  Rng rng(2);
  for (std::size_t i = 0; i < 25; ++i) rng.fill_normal(pts.row(i));
  // Rotate + scale: neighbourhoods unchanged.
  Matrix emb(25, 2);
  const double c = std::cos(0.7), s = std::sin(0.7);
  for (std::size_t i = 0; i < 25; ++i) {
    emb(i, 0) = 3.0 * (c * pts(i, 0) - s * pts(i, 1));
    emb(i, 1) = 3.0 * (s * pts(i, 0) + c * pts(i, 1));
  }
  EXPECT_NEAR(trustworthiness(pts, emb, 5), 1.0, 1e-12);
}

TEST(Trustworthiness, LowForScrambledEmbedding) {
  Matrix pts(40, 3);
  Rng rng(3);
  for (std::size_t i = 0; i < 40; ++i) rng.fill_normal(pts.row(i));
  Matrix scrambled(40, 3);
  for (std::size_t i = 0; i < 40; ++i) {
    rng.fill_normal(scrambled.row(i));  // unrelated coordinates
  }
  EXPECT_LT(trustworthiness(pts, scrambled, 5), 0.75);
}

TEST(Trustworthiness, ValidatesArguments) {
  const Matrix pts(10, 2);
  EXPECT_THROW(trustworthiness(pts, Matrix(9, 2), 2), CheckError);
  EXPECT_THROW(trustworthiness(pts, pts, 0), CheckError);
  EXPECT_THROW(trustworthiness(pts, pts, 5), CheckError);  // 2k >= n
}

TEST(AxisCorrelation, PerfectLinearFactor) {
  Matrix emb(20, 2);
  std::vector<double> factor(20);
  for (std::size_t i = 0; i < 20; ++i) {
    emb(i, 0) = static_cast<double>(i);
    emb(i, 1) = 0.0;
    factor[i] = 2.0 * static_cast<double>(i) + 5.0;
  }
  EXPECT_NEAR(axis_factor_correlation(emb, 0, factor), 1.0, 1e-12);
}

TEST(AxisCorrelation, SignReflectsDirection) {
  Matrix emb(10, 1);
  std::vector<double> factor(10);
  for (std::size_t i = 0; i < 10; ++i) {
    emb(i, 0) = static_cast<double>(i);
    factor[i] = -static_cast<double>(i);
  }
  EXPECT_NEAR(axis_factor_correlation(emb, 0, factor), -1.0, 1e-12);
}

TEST(AxisCorrelation, IndependentFactorNearZero) {
  Matrix emb(500, 1);
  std::vector<double> factor(500);
  Rng rng(4);
  for (std::size_t i = 0; i < 500; ++i) {
    emb(i, 0) = rng.normal();
    factor[i] = rng.normal();
  }
  EXPECT_LT(std::abs(axis_factor_correlation(emb, 0, factor)), 0.15);
}

TEST(AxisCorrelation, DegenerateInputsGiveZero) {
  Matrix emb(5, 1);  // all-zero axis
  const std::vector<double> factor{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_EQ(axis_factor_correlation(emb, 0, factor), 0.0);
}

TEST(AxisCorrelation, ValidatesArguments) {
  const Matrix emb(5, 2);
  EXPECT_THROW(axis_factor_correlation(emb, 2, std::vector<double>(5)),
               CheckError);
  EXPECT_THROW(axis_factor_correlation(emb, 0, std::vector<double>(4)),
               CheckError);
}

}  // namespace
}  // namespace arams::embed
