// SketchErrorTracker: reservoir uniformity, error estimation accuracy,
// streaming behaviour.

#include <gtest/gtest.h>

#include <cmath>

#include "core/error_tracker.hpp"
#include "core/fd.hpp"
#include "data/synthetic.hpp"
#include "linalg/blas.hpp"
#include "linalg/norms.hpp"
#include "linalg/qr.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace arams::core {
namespace {

using linalg::Matrix;

TEST(ErrorTracker, ValidatesConfig) {
  ErrorTrackerConfig config;
  config.reservoir_size = 0;
  EXPECT_THROW(SketchErrorTracker{config}, CheckError);
}

TEST(ErrorTracker, ErrorBeforeDataThrows) {
  SketchErrorTracker tracker{ErrorTrackerConfig{}};
  EXPECT_THROW((void)tracker.relative_error(Matrix(2, 4)), CheckError);
}

TEST(ErrorTracker, KeepsEverythingWhileUnderCapacity) {
  ErrorTrackerConfig config;
  config.reservoir_size = 100;
  SketchErrorTracker tracker(config);
  Matrix rows(30, 5);
  Rng rng(1);
  for (std::size_t i = 0; i < 30; ++i) rng.fill_normal(rows.row(i));
  tracker.observe_batch(rows);
  EXPECT_EQ(tracker.reservoir_count(), 30u);
  EXPECT_EQ(tracker.rows_seen(), 30);
}

TEST(ErrorTracker, ReservoirIsUniformOverTheStream) {
  // With Algorithm R every stream position survives with probability
  // reservoir/n; check the first and last rows' survival rates.
  constexpr int kReps = 500;
  constexpr std::size_t kN = 60;
  constexpr std::size_t kSize = 12;
  int first_kept = 0, last_kept = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    ErrorTrackerConfig config;
    config.reservoir_size = kSize;
    config.seed = static_cast<std::uint64_t>(rep) * 31 + 1;
    SketchErrorTracker tracker(config);
    Matrix rows(kN, 1);
    for (std::size_t i = 0; i < kN; ++i) {
      rows(i, 0) = static_cast<double>(i);
    }
    tracker.observe_batch(rows);
    const Matrix kept = tracker.reservoir_rows();
    for (std::size_t i = 0; i < kept.rows(); ++i) {
      if (kept(i, 0) == 0.0) ++first_kept;
      if (kept(i, 0) == static_cast<double>(kN - 1)) ++last_kept;
    }
  }
  const double expected = static_cast<double>(kSize) / kN;  // 0.2
  EXPECT_NEAR(first_kept / static_cast<double>(kReps), expected, 0.06);
  EXPECT_NEAR(last_kept / static_cast<double>(kReps), expected, 0.06);
}

TEST(ErrorTracker, EstimateMatchesExactStreamError) {
  // Low-rank stream: tracker's estimate vs the exact relative residual of
  // the *whole* stream against the sketch basis.
  data::SyntheticConfig dc;
  dc.n = 2000;
  dc.d = 40;
  dc.spectrum.kind = data::DecayKind::kExponential;
  dc.spectrum.count = 20;
  dc.spectrum.rate = 0.25;
  dc.noise = 5e-3;
  Rng rng(2);
  const Matrix a = data::make_low_rank(dc, rng);

  FrequentDirections fd(FdConfig{12, true});
  ErrorTrackerConfig config;
  config.reservoir_size = 300;
  SketchErrorTracker tracker(config);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    fd.append(a.row(i));
    tracker.observe(a.row(i));
  }
  const Matrix basis = fd.basis(12);
  const double estimated = tracker.relative_error(basis);
  const double exact = linalg::projection_residual_exact(a, basis) /
                       linalg::frobenius_norm_squared(a);
  EXPECT_NEAR(estimated, exact, 0.5 * exact + 1e-4);
}

TEST(ErrorTracker, ZeroForDataInsideBasisSpan) {
  Rng rng(3);
  Matrix b(10, 2);
  for (std::size_t i = 0; i < 10; ++i) rng.fill_normal(b.row(i));
  linalg::orthonormalize_columns(b);
  const Matrix basis = b.transposed();
  SketchErrorTracker tracker{ErrorTrackerConfig{}};
  for (int i = 0; i < 50; ++i) {
    std::vector<double> row(10, 0.0);
    const double c0 = rng.normal(), c1 = rng.normal();
    for (std::size_t j = 0; j < 10; ++j) {
      row[j] = c0 * basis(0, j) + c1 * basis(1, j);
    }
    tracker.observe(row);
  }
  EXPECT_NEAR(tracker.relative_error(basis), 0.0, 1e-10);
}

TEST(ErrorTracker, DimensionChangeThrows) {
  SketchErrorTracker tracker{ErrorTrackerConfig{}};
  const std::vector<double> row3{1.0, 2.0, 3.0};
  const std::vector<double> row2{1.0, 2.0};
  tracker.observe(row3);
  EXPECT_THROW(tracker.observe(row2), CheckError);
}

}  // namespace
}  // namespace arams::core
