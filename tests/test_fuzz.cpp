// Randomized stress tests: random shapes, degenerate and adversarial
// inputs through the sketching stack — nothing may crash, produce NaNs,
// or violate the FD invariants, across a seeded sweep.

#include <gtest/gtest.h>

#include <cmath>

#include "core/arams_sketch.hpp"
#include "core/fd.hpp"
#include "core/merge.hpp"
#include "core/priority_sampler.hpp"
#include "linalg/blas.hpp"
#include "linalg/norms.hpp"
#include "linalg/svd.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace arams {
namespace {

using linalg::Matrix;

/// Random matrix with occasional pathological rows: zeros, duplicates,
/// huge magnitudes, rank-1 repeats.
Matrix nasty_matrix(Rng& rng) {
  const std::size_t n = 5 + rng.uniform_index(120);
  const std::size_t d = 2 + rng.uniform_index(40);
  Matrix m(n, d);
  std::vector<double> repeat(d);
  rng.fill_normal(repeat);
  for (std::size_t i = 0; i < n; ++i) {
    const double dice = rng.uniform();
    auto row = m.row(i);
    if (dice < 0.1) {
      // zero row
    } else if (dice < 0.2) {
      std::copy(repeat.begin(), repeat.end(), row.begin());
    } else if (dice < 0.3) {
      rng.fill_normal(row);
      linalg::scale(row, 1e8);
    } else if (dice < 0.4) {
      rng.fill_normal(row);
      linalg::scale(row, 1e-8);
    } else {
      rng.fill_normal(row);
    }
  }
  return m;
}

bool has_nan(const Matrix& m) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (const double v : m.row(i)) {
      if (std::isnan(v) || std::isinf(v)) return true;
    }
  }
  return false;
}

class FuzzSeeds : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSeeds, FdSurvivesNastyInputsAndKeepsGuarantee) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  const Matrix a = nasty_matrix(rng);
  const std::size_t ell = 2 + rng.uniform_index(12);

  core::FrequentDirections fd(core::FdConfig{ell, true});
  fd.append_batch(a);
  fd.compress();
  const Matrix b = fd.sketch();
  ASSERT_FALSE(has_nan(b));
  EXPECT_LE(b.rows(), ell);

  const double mass = linalg::frobenius_norm_squared(a);
  if (mass > 0.0) {
    Rng power(99);
    const double err = linalg::covariance_error(a, b, power, 60);
    EXPECT_LE(err, mass / static_cast<double>(ell) * 1.01);
  }
}

TEST_P(FuzzSeeds, PrioritySamplerSurvivesNastyInputs) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 3);
  const Matrix a = nasty_matrix(rng);
  core::PrioritySamplerConfig config;
  config.capacity = 1 + rng.uniform_index(a.rows());
  config.seed = static_cast<std::uint64_t>(GetParam());
  core::PrioritySampler sampler(config);
  sampler.push_batch(a);
  const Matrix s = sampler.take();
  EXPECT_LE(s.rows(), config.capacity);
  EXPECT_FALSE(has_nan(s));
  // Sampled rows never include zero rows.
  for (std::size_t i = 0; i < s.rows(); ++i) {
    EXPECT_GT(linalg::norm2(s.row(i)), 0.0);
  }
}

TEST_P(FuzzSeeds, MergeSurvivesMixedSketches) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1299709 + 5);
  const std::size_t d = 3 + rng.uniform_index(20);
  const std::size_t shards = 2 + rng.uniform_index(6);
  const std::size_t ell = 2 + rng.uniform_index(8);
  std::vector<Matrix> sketches;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t rows = 1 + rng.uniform_index(2 * ell);
    Matrix sk(rows, d);
    for (std::size_t i = 0; i < rows; ++i) {
      if (rng.uniform() < 0.15) continue;  // leave a zero row in
      rng.fill_normal(sk.row(i));
    }
    sketches.push_back(std::move(sk));
  }
  const Matrix tree = core::tree_merge(sketches, ell);
  const Matrix serial = core::serial_merge(std::move(sketches), ell);
  EXPECT_FALSE(has_nan(tree));
  EXPECT_FALSE(has_nan(serial));
  EXPECT_LE(tree.rows(), std::max<std::size_t>(ell, 1));
}

TEST_P(FuzzSeeds, AramsEndToEndOnNastyInputs) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 15485863 + 7);
  const Matrix a = nasty_matrix(rng);
  if (linalg::frobenius_norm_squared(a) == 0.0) return;  // nothing to do
  core::AramsConfig config;
  config.ell = 4 + rng.uniform_index(8);
  config.beta = 0.3 + 0.7 * rng.uniform();
  config.rank_adaptive = rng.uniform() < 0.5;
  config.epsilon = 0.05 + 0.2 * rng.uniform();
  config.max_ell = 64;
  config.seed = static_cast<std::uint64_t>(GetParam());
  core::Arams sketcher(config);
  const core::AramsResult result = sketcher.sketch_matrix(a);
  EXPECT_FALSE(has_nan(result.sketch));
  EXPECT_LE(result.sketch.rows(), result.final_ell);
}

TEST_P(FuzzSeeds, SigmaVtSvdStableOnNastyInputs) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 32452843 + 11);
  const Matrix a = nasty_matrix(rng);
  const linalg::SigmaVt svd = linalg::sigma_vt_svd(a);
  for (const double s : svd.sigma) {
    EXPECT_FALSE(std::isnan(s));
    EXPECT_GE(s, 0.0);
  }
  EXPECT_FALSE(has_nan(svd.w));
  // Frobenius mass preserved.
  double s2 = 0.0;
  for (const double s : svd.sigma) s2 += s * s;
  const double mass = linalg::frobenius_norm_squared(a);
  EXPECT_NEAR(s2, mass, 1e-6 * std::max(mass, 1.0));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Range(0, 12));

}  // namespace
}  // namespace arams
