// Flight recorder: per-thread ring journals, merge-on-drain readers, the
// signal-safe tail writer, and the JSON export. The recorder under test
// is mostly the process-global singleton (that is what production code
// records into), so tests tag their events with magic shot ids and filter
// on them instead of assuming an empty journal.

#include <fcntl.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/flight_recorder.hpp"

namespace arams::obs {
namespace {

std::vector<FlightEvent> events_with_shot(const std::vector<FlightEvent>& all,
                                          std::uint64_t lo, std::uint64_t hi) {
  std::vector<FlightEvent> out;
  for (const FlightEvent& e : all) {
    if (e.shot_id >= lo && e.shot_id < hi) out.push_back(e);
  }
  return out;
}

// ------------------------------------------------------------ FlightJournal

TEST(FlightJournal, RecordsAndReadsBackInOrder) {
  detail::FlightJournal journal(/*capacity_pow2=*/8, /*ordinal=*/3);
  for (int i = 0; i < 5; ++i) {
    journal.record(static_cast<double>(i), FlightCode::kCustom,
                   /*shot=*/100 + static_cast<std::uint64_t>(i),
                   /*detail_arg=*/static_cast<std::uint32_t>(i),
                   /*value=*/0.5 * i);
  }
  EXPECT_EQ(journal.records_written(), 5u);
  EXPECT_EQ(journal.capacity(), 8u);
  EXPECT_EQ(journal.ordinal(), 3u);

  std::vector<FlightEvent> out;
  journal.read_into(out);
  ASSERT_EQ(out.size(), 5u);
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.shot_id < b.shot_id;
            });
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(out[i].shot_id, 100u + static_cast<std::uint64_t>(i));
    EXPECT_EQ(out[i].code, FlightCode::kCustom);
    EXPECT_EQ(out[i].detail, static_cast<std::uint32_t>(i));
    EXPECT_DOUBLE_EQ(out[i].value, 0.5 * i);
    EXPECT_DOUBLE_EQ(out[i].t_seconds, static_cast<double>(i));
    EXPECT_EQ(out[i].thread, 3u);
  }
}

TEST(FlightJournal, RingOverwritesOldestWhenFull) {
  detail::FlightJournal journal(/*capacity_pow2=*/4, /*ordinal=*/0);
  for (int i = 0; i < 10; ++i) {
    journal.record(static_cast<double>(i), FlightCode::kCustom,
                   static_cast<std::uint64_t>(i), 0, 0.0);
  }
  EXPECT_EQ(journal.records_written(), 10u);
  std::vector<FlightEvent> out;
  journal.read_into(out);
  ASSERT_EQ(out.size(), 4u);  // only the ring capacity survives
  std::vector<std::uint64_t> shots;
  for (const FlightEvent& e : out) shots.push_back(e.shot_id);
  std::sort(shots.begin(), shots.end());
  EXPECT_EQ(shots, (std::vector<std::uint64_t>{6, 7, 8, 9}));
}

TEST(FlightJournal, CapacityRoundsUpToPowerOfTwo) {
  detail::FlightJournal journal(/*capacity_pow2=*/5, /*ordinal=*/0);
  EXPECT_EQ(journal.capacity(), 8u);
}

// -------------------------------------------------------------- code names

TEST(FlightCodeName, AllCodesHaveStableNames) {
  EXPECT_STREQ(flight_code_name(FlightCode::kFrameIngested),
               "frame_ingested");
  EXPECT_STREQ(flight_code_name(FlightCode::kFrameRejected),
               "frame_rejected");
  EXPECT_STREQ(flight_code_name(FlightCode::kBatchSketched),
               "batch_sketched");
  EXPECT_STREQ(flight_code_name(FlightCode::kRankChange), "rank_change");
  EXPECT_STREQ(flight_code_name(FlightCode::kQueueSaturation),
               "queue_saturation");
  EXPECT_STREQ(flight_code_name(FlightCode::kHealthTransition),
               "health_transition");
  EXPECT_STREQ(flight_code_name(FlightCode::kSnapshot), "snapshot");
  EXPECT_STREQ(flight_code_name(FlightCode::kStageComplete),
               "stage_complete");
  EXPECT_STREQ(flight_code_name(FlightCode::kCrash), "crash");
  EXPECT_STREQ(flight_code_name(FlightCode::kCustom), "custom");
  EXPECT_STREQ(flight_code_name(static_cast<FlightCode>(999)), "unknown");
  EXPECT_STREQ(flight_stage_name(FlightStage::kPreprocess), "preprocess");
  EXPECT_STREQ(flight_stage_name(FlightStage::kCluster), "cluster");
}

// ------------------------------------------------------------ FlightRecorder

TEST(FlightRecorder, DisableTurnsRecordIntoANoOp) {
  FlightRecorder& recorder = flight_recorder();
  const bool was_enabled = recorder.enabled();
  recorder.enable(false);
  const std::uint64_t before = recorder.total_recorded();
  recorder.record(FlightCode::kCustom, /*shot_id=*/777777);
  EXPECT_EQ(recorder.total_recorded(), before);
  recorder.enable(true);
  recorder.record(FlightCode::kCustom, /*shot_id=*/777778);
  EXPECT_EQ(recorder.total_recorded(), before + 1);
  recorder.enable(was_enabled);
}

TEST(FlightRecorder, DrainMergesSortedByTimestamp) {
  FlightRecorder& recorder = flight_recorder();
  recorder.enable(true);
  constexpr std::uint64_t kBase = 500000;
  for (int i = 0; i < 6; ++i) {
    recorder.record(FlightCode::kCustom, kBase + static_cast<std::uint64_t>(i),
                    /*detail=*/static_cast<std::uint32_t>(i), /*value=*/2.5);
  }
  const std::vector<FlightEvent> all = recorder.drain();
  // The merged drain is globally timestamp-sorted.
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i - 1].t_seconds, all[i].t_seconds);
  }
  const std::vector<FlightEvent> mine =
      events_with_shot(all, kBase, kBase + 6);
  ASSERT_EQ(mine.size(), 6u);
  for (std::size_t i = 0; i < mine.size(); ++i) {
    EXPECT_EQ(mine[i].shot_id, kBase + i);  // same-thread order preserved
    EXPECT_DOUBLE_EQ(mine[i].value, 2.5);
  }
}

TEST(FlightRecorder, TailReturnsTheNewestEvents) {
  FlightRecorder& recorder = flight_recorder();
  recorder.enable(true);
  constexpr std::uint64_t kBase = 600000;
  for (int i = 0; i < 8; ++i) {
    recorder.record(FlightCode::kCustom,
                    kBase + static_cast<std::uint64_t>(i));
  }
  const std::vector<FlightEvent> tail = recorder.tail(3);
  ASSERT_EQ(tail.size(), 3u);
  // The three newest events on this thread are the last three recorded.
  EXPECT_EQ(tail.back().shot_id, kBase + 7);
  const std::vector<FlightEvent> everything = recorder.tail(1u << 30);
  EXPECT_EQ(everything.size(), recorder.drain().size());
}

TEST(FlightRecorder, ConcurrentWritersAllLand) {
  FlightRecorder& recorder = flight_recorder();
  recorder.enable(true);
  constexpr std::uint64_t kBase = 700000;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  const std::uint64_t before = recorder.total_recorded();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.record(
            FlightCode::kCustom,
            kBase + static_cast<std::uint64_t>(t) * kPerThread +
                static_cast<std::uint64_t>(i));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(recorder.total_recorded(),
            before + static_cast<std::uint64_t>(kThreads) * kPerThread);
  const std::vector<FlightEvent> mine = events_with_shot(
      recorder.drain(), kBase, kBase + kThreads * kPerThread);
  // Each thread's ring holds far more than kPerThread, so nothing was
  // overwritten and every event must be drained exactly once.
  EXPECT_EQ(mine.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST(FlightRecorder, JsonLinesCarryCodeNamesAndFields) {
  FlightRecorder& recorder = flight_recorder();
  recorder.enable(true);
  recorder.record(FlightCode::kCustom, /*shot_id=*/812345, /*detail=*/7,
                  /*value=*/1.5);
  std::ostringstream out;
  recorder.write_json_lines(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"code\":\"custom\""), std::string::npos);
  EXPECT_NE(text.find("\"shot\":812345"), std::string::npos);
  EXPECT_NE(text.find("\"detail\":7"), std::string::npos);
  // Every line is one JSON object.
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
}

TEST(FlightRecorder, WriteTailFdIsPlainTextWithoutAllocation) {
  FlightRecorder& recorder = flight_recorder();
  recorder.enable(true);
  recorder.record(FlightCode::kCustom, /*shot_id=*/912345, /*detail=*/2,
                  /*value=*/0.25);
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "arams_flight_tail_test.txt";
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  const std::size_t written = recorder.write_tail_fd(fd, 16);
  ::close(fd);
  EXPECT_GT(written, 0u);
  EXPECT_LE(written, 16u);
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  EXPECT_NE(text.find("code=custom"), std::string::npos);
  EXPECT_NE(text.find("shot=912345"), std::string::npos);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace arams::obs
