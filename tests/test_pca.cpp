// PCA projection from a sketch.

#include <gtest/gtest.h>

#include <cmath>

#include "core/fd.hpp"
#include "data/synthetic.hpp"
#include "embed/pca.hpp"
#include "linalg/blas.hpp"
#include "linalg/norms.hpp"
#include "linalg/qr.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace arams::embed {
namespace {

using linalg::Matrix;

TEST(Pca, EmptySketchThrows) {
  EXPECT_THROW(PcaProjector(Matrix(), 2), CheckError);
}

TEST(Pca, ZeroComponentsThrows) {
  EXPECT_THROW(PcaProjector(Matrix(2, 3), 0), CheckError);
}

TEST(Pca, BasisIsOrthonormal) {
  Rng rng(1);
  Matrix sketch(6, 20);
  for (std::size_t i = 0; i < 6; ++i) rng.fill_normal(sketch.row(i));
  const PcaProjector pca(sketch, 4);
  EXPECT_EQ(pca.components(), 4u);
  EXPECT_EQ(pca.dim(), 20u);
  EXPECT_LT(linalg::orthonormality_defect(pca.basis().transposed()), 1e-8);
}

TEST(Pca, ComponentCountCappedByRank) {
  // Rank-2 sketch: asking for 5 components returns 2.
  Matrix sketch(4, 10);
  Rng rng(2);
  std::vector<double> u(10), v(10);
  rng.fill_normal(u);
  rng.fill_normal(v);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 10; ++j) {
      sketch(i, j) = static_cast<double>(i + 1) * u[j] +
                     static_cast<double>(4 - i) * v[j];
    }
  }
  const PcaProjector pca(sketch, 5);
  EXPECT_EQ(pca.components(), 2u);
}

TEST(Pca, ProjectionDimensionMismatchThrows) {
  Rng rng(3);
  Matrix sketch(3, 8);
  for (std::size_t i = 0; i < 3; ++i) rng.fill_normal(sketch.row(i));
  const PcaProjector pca(sketch, 2);
  EXPECT_THROW(pca.project(Matrix(5, 7)), CheckError);
}

TEST(Pca, ProjectionRecoversLowRankData) {
  // Data in a 3-D subspace: 3-component PCA from a sketch must reconstruct
  // it nearly exactly.
  data::SyntheticConfig config;
  config.n = 120;
  config.d = 30;
  config.spectrum.kind = data::DecayKind::kStep;
  config.spectrum.count = 3;
  config.spectrum.step_rank = 3;
  config.spectrum.step_floor = 0.0;
  Rng rng(4);
  const Matrix a = data::make_low_rank(config, rng);

  core::FrequentDirections fd(core::FdConfig{8, true});
  fd.append_batch(a);
  fd.compress();
  const PcaProjector pca(fd.sketch(), 3);
  const Matrix z = pca.project(a);
  EXPECT_EQ(z.rows(), 120u);
  EXPECT_EQ(z.cols(), 3u);
  const Matrix back = pca.reconstruct(z);
  EXPECT_LT(Matrix::max_abs_diff(back, a), 1e-6);
}

TEST(Pca, CapturedVarianceDominates) {
  data::SyntheticConfig config;
  config.n = 200;
  config.d = 40;
  config.spectrum.kind = data::DecayKind::kExponential;
  config.spectrum.count = 20;
  config.spectrum.rate = 0.4;
  Rng rng(5);
  const Matrix a = data::make_low_rank(config, rng);

  core::FrequentDirections fd(core::FdConfig{12, true});
  fd.append_batch(a);
  fd.compress();
  const PcaProjector pca(fd.sketch(), 6);
  const double residual = linalg::projection_residual_exact(a, pca.basis());
  EXPECT_LT(residual, 0.05 * linalg::frobenius_norm_squared(a));
}

TEST(Pca, TallSketchPathWorks) {
  // rows > cols exercises the jacobi_svd branch.
  Rng rng(6);
  Matrix sketch(20, 6);
  for (std::size_t i = 0; i < 20; ++i) rng.fill_normal(sketch.row(i));
  const PcaProjector pca(sketch, 3);
  EXPECT_EQ(pca.components(), 3u);
  EXPECT_LT(linalg::orthonormality_defect(pca.basis().transposed()), 1e-8);
}

TEST(Pca, SingularValuesDescend) {
  Rng rng(7);
  Matrix sketch(8, 16);
  for (std::size_t i = 0; i < 8; ++i) rng.fill_normal(sketch.row(i));
  const PcaProjector pca(sketch, 5);
  const auto& sv = pca.singular_values();
  ASSERT_EQ(sv.size(), pca.components());
  for (std::size_t i = 1; i < sv.size(); ++i) {
    EXPECT_GE(sv[i - 1], sv[i]);
  }
}

}  // namespace
}  // namespace arams::embed
