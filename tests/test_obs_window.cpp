// Windowed telemetry: EWMA rates, sliding-histogram epoch rotation, and
// bucket-interpolated quantiles. Every test drives the time axis through
// the explicit `now_seconds` overloads so nothing here sleeps.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "obs/window.hpp"
#include "parallel/thread_pool.hpp"
#include "util/check.hpp"

namespace arams::obs {
namespace {

// ----------------------------------------------------------------- EwmaRate

TEST(EwmaRate, FirstFoldIsTheInstantaneousRate) {
  EwmaRate rate(/*tau_seconds=*/10.0, /*start_seconds=*/0.0);
  rate.record(50);
  // 50 events over 5 seconds primes the EWMA at exactly 10 ev/s.
  EXPECT_DOUBLE_EQ(rate.rate(5.0), 10.0);
  EXPECT_EQ(rate.total(), 50);
}

TEST(EwmaRate, DecaysTowardZeroWhenEventsStop) {
  EwmaRate rate(/*tau_seconds=*/2.0, /*start_seconds=*/0.0);
  rate.record(100);
  const double primed = rate.rate(1.0);
  EXPECT_DOUBLE_EQ(primed, 100.0);
  // No further events: each fold pulls the EWMA toward 0 with weight
  // 1 - exp(-elapsed/tau).
  const double later = rate.rate(3.0);
  EXPECT_LT(later, primed);
  EXPECT_GT(later, 0.0);
  const double much_later = rate.rate(30.0);
  EXPECT_LT(much_later, 1.0);
}

TEST(EwmaRate, TracksASteadyRate) {
  EwmaRate rate(/*tau_seconds=*/1.0, /*start_seconds=*/0.0);
  // 20 ev/s sustained for many time constants converges to ~20.
  double folded = 0.0;
  for (int tick = 1; tick <= 30; ++tick) {
    rate.record(20);
    folded = rate.rate(static_cast<double>(tick));
  }
  EXPECT_NEAR(folded, 20.0, 1.0);
  EXPECT_EQ(rate.total(), 600);
}

TEST(EwmaRate, TinyElapsedReusesThePreviousFold) {
  EwmaRate rate(/*tau_seconds=*/10.0, /*start_seconds=*/0.0);
  rate.record(10);
  const double folded = rate.rate(1.0);
  rate.record(1000);
  // 1e-4 s since the last fold: the quotient would be absurd; the fold is
  // deferred and the previous value returned.
  EXPECT_DOUBLE_EQ(rate.rate(1.0001), folded);
  // The deferred events are still counted, not lost.
  EXPECT_EQ(rate.total(), 1010);
}

TEST(EwmaRate, ResetClearsStateAndCount) {
  EwmaRate rate(/*tau_seconds=*/1.0, /*start_seconds=*/0.0);
  rate.record(42);
  ASSERT_GT(rate.rate(1.0), 0.0);
  rate.reset();
  EXPECT_EQ(rate.total(), 0);
  EXPECT_DOUBLE_EQ(rate.rate(2.0), 0.0);
}

TEST(EwmaRate, RejectsNonPositiveTau) {
  EXPECT_THROW(EwmaRate(0.0, 0.0), CheckError);
}

// --------------------------------------------------- SlidingHistogram

std::array<double, 4> small_bounds() { return {1.0, 2.0, 4.0, 8.0}; }

TEST(SlidingHistogram, RequiresAtLeastTwoEpochs) {
  EXPECT_THROW(
      SlidingHistogram(1.0, 1, std::span<const double>{}, 0.0),
      CheckError);
}

TEST(SlidingHistogram, CountsEverythingInsideTheWindow) {
  const auto bounds = small_bounds();
  SlidingHistogram h(/*window_seconds=*/6.0, /*epochs=*/3,
                     std::span<const double>(bounds), /*start_seconds=*/0.0);
  for (int i = 0; i < 10; ++i) h.record(0.5);
  const WindowStats stats = h.stats(1.0);
  EXPECT_EQ(stats.count, 10);
  EXPECT_DOUBLE_EQ(stats.sum, 5.0);
  EXPECT_DOUBLE_EQ(stats.rate, 10.0 / 6.0);
}

TEST(SlidingHistogram, EpochRotationRetiresOldSlices) {
  const auto bounds = small_bounds();
  // 3 epochs of 2 s each: an event at t=0 must be gone once the window
  // has slid three epochs past it.
  SlidingHistogram h(/*window_seconds=*/6.0, /*epochs=*/3,
                     std::span<const double>(bounds), /*start_seconds=*/0.0);
  h.record(0.5);           // epoch [0, 2)
  h.advance(2.5);          // rotate; epoch [2, 4) is current
  h.record(3.0);           // lands in the new epoch
  EXPECT_EQ(h.stats(2.5).count, 2);  // both still live
  // Two more rotations retire the t=0 slice (its ring slot is reused).
  h.advance(4.5);
  h.advance(6.5);
  const WindowStats stats = h.stats(6.5);
  EXPECT_EQ(stats.count, 1);
  EXPECT_DOUBLE_EQ(stats.sum, 3.0);
}

TEST(SlidingHistogram, LongGapExpiresTheWholeWindow) {
  const auto bounds = small_bounds();
  SlidingHistogram h(/*window_seconds=*/6.0, /*epochs=*/3,
                     std::span<const double>(bounds), /*start_seconds=*/0.0);
  for (int i = 0; i < 100; ++i) h.record(1.5);
  EXPECT_EQ(h.stats(1.0).count, 100);
  // A silence longer than the whole window: everything expires at once.
  EXPECT_EQ(h.stats(100.0).count, 0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5, 100.0), 0.0);
}

TEST(SlidingHistogram, QuantilesMatchExactValuesWithinABucket) {
  // Fine uniform buckets over [0, 100]: the interpolated quantile of a
  // uniform ramp must land within one bucket width of the exact value.
  std::vector<double> bounds;
  for (double b = 1.0; b <= 100.0; b += 1.0) bounds.push_back(b);
  SlidingHistogram h(/*window_seconds=*/60.0, /*epochs=*/6,
                     std::span<const double>(bounds), /*start_seconds=*/0.0);
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) {
    const double v = 100.0 * (static_cast<double>(i) + 0.5) / 1000.0;
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.10, 0.50, 0.95, 0.99}) {
    const double exact =
        values[static_cast<std::size_t>(q * (values.size() - 1))];
    EXPECT_NEAR(h.quantile(q, 1.0), exact, 1.0)
        << "quantile " << q << " drifted more than one bucket width";
  }
}

TEST(SlidingHistogram, OverflowValuesClampToTheLastBound) {
  const auto bounds = small_bounds();
  SlidingHistogram h(/*window_seconds=*/6.0, /*epochs=*/3,
                     std::span<const double>(bounds), /*start_seconds=*/0.0);
  for (int i = 0; i < 8; ++i) h.record(1000.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5, 1.0), 8.0);
  const std::vector<long> buckets = h.window_buckets(1.0);
  ASSERT_EQ(buckets.size(), bounds.size() + 1);
  EXPECT_EQ(buckets.back(), 8);
}

TEST(SlidingHistogram, ConcurrentRecordingLosesNothingWithoutRotation) {
  const auto bounds = small_bounds();
  // A window far longer than the test: no rotation can race the writers,
  // so every record must land (the misfile caveat only applies across a
  // rotation boundary).
  SlidingHistogram h(/*window_seconds=*/3600.0, /*epochs=*/4,
                     std::span<const double>(bounds), /*start_seconds=*/0.0);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  parallel::ThreadPool pool(kThreads);
  pool.parallel_for(kThreads, [&](std::size_t t) {
    for (int i = 0; i < kPerThread; ++i) {
      h.record(static_cast<double>(t) + 0.5);
    }
  });
  EXPECT_EQ(h.stats(1.0).count,
            static_cast<long>(kThreads) * kPerThread);
}

TEST(SlidingHistogram, FreshWindowQuantilesAreZero) {
  const auto bounds = small_bounds();
  SlidingHistogram h(/*window_seconds=*/6.0, /*epochs=*/3,
                     std::span<const double>(bounds), /*start_seconds=*/0.0);
  // Nothing recorded yet: every quantile is 0, not NaN or garbage.
  for (const double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q, 0.5), 0.0) << "q=" << q;
  }
  const WindowStats stats = h.stats(0.5);
  EXPECT_EQ(stats.count, 0);
  EXPECT_DOUBLE_EQ(stats.sum, 0.0);
  EXPECT_DOUBLE_EQ(stats.rate, 0.0);
}

TEST(SlidingHistogram, EpochRingSurvivesManyWraparounds) {
  const auto bounds = small_bounds();
  // 3 epochs of 2 s: driving the clock through hundreds of rotations
  // wraps the ring index many times over; the window must stay exact.
  SlidingHistogram h(/*window_seconds=*/6.0, /*epochs=*/3,
                     std::span<const double>(bounds), /*start_seconds=*/0.0);
  double now = 0.0;
  for (int rotation = 0; rotation < 500; ++rotation) {
    now += 2.0;
    h.advance(now);  // rotate into the epoch containing `now`...
    h.record(1.5);   // ...then land one record in it
  }
  // Only the last three epochs' records are live.
  const WindowStats stats = h.stats(now);
  EXPECT_EQ(stats.count, 3);
  EXPECT_DOUBLE_EQ(stats.sum, 4.5);
  // A whole-window silence after the long run still clears everything.
  EXPECT_EQ(h.stats(now + 100.0).count, 0);
}

TEST(SlidingHistogram, ConcurrentWritersRacingRotationStayBounded) {
  const auto bounds = small_bounds();
  // Writers hammer record() while the main thread forces rotations. A
  // record racing a rotation may be misfiled into a neighbouring epoch
  // (documented telemetry-grade behaviour) but the total across the ring
  // can never exceed what was written, and nothing may crash or hang.
  SlidingHistogram h(/*window_seconds=*/0.4, /*epochs=*/4,
                     std::span<const double>(bounds), /*start_seconds=*/0.0);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::atomic<bool> rotate{true};
  std::thread rotator([&h, &rotate] {
    double now = 0.0;
    while (rotate.load(std::memory_order_relaxed)) {
      now += 0.1;  // one epoch width per nudge
      h.advance(now);
    }
  });
  parallel::ThreadPool pool(kThreads);
  pool.parallel_for(kThreads, [&h](std::size_t t) {
    for (int i = 0; i < kPerThread; ++i) {
      h.record(static_cast<double>(t % 4) + 0.5);
    }
  });
  rotate.store(false, std::memory_order_relaxed);
  rotator.join();
  const long live = h.stats(0.0).count;
  EXPECT_GE(live, 0);
  EXPECT_LE(live, static_cast<long>(kThreads) * kPerThread);
}

TEST(EwmaRate, ConcurrentRecordsAreLossless) {
  EwmaRate rate(/*tau_seconds=*/10.0, /*start_seconds=*/0.0);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  parallel::ThreadPool pool(kThreads);
  pool.parallel_for(kThreads, [&rate](std::size_t) {
    for (int i = 0; i < kPerThread; ++i) rate.record(1);
  });
  EXPECT_EQ(rate.total(), static_cast<long>(kThreads) * kPerThread);
  EXPECT_GT(rate.rate(5.0), 0.0);
}

// ----------------------------------------------------------- bucket_quantile

TEST(BucketQuantile, InterpolatesInsideABucket) {
  const std::array<double, 3> bounds{10.0, 20.0, 30.0};
  const std::array<long, 4> buckets{0, 10, 0, 0};
  // All mass in (10, 20]: the median interpolates to the middle.
  EXPECT_DOUBLE_EQ(
      bucket_quantile(0.5, std::span<const double>(bounds),
                      std::span<const long>(buckets)),
      15.0);
}

TEST(BucketQuantile, EmptyAndDegenerateInputs) {
  const std::array<double, 2> bounds{1.0, 2.0};
  const std::array<long, 3> empty{0, 0, 0};
  EXPECT_DOUBLE_EQ(bucket_quantile(0.5, std::span<const double>(bounds),
                                   std::span<const long>(empty)),
                   0.0);
  const std::array<long, 3> overflow_only{0, 0, 7};
  EXPECT_DOUBLE_EQ(bucket_quantile(0.99, std::span<const double>(bounds),
                                   std::span<const long>(overflow_only)),
                   2.0);
}

// -------------------------------------------- registry-managed instances

TEST(MetricsRegistry, EwmaAndSlidingAreNamedSingletons) {
  MetricsRegistry registry;
  EwmaRate& a = registry.ewma("test.window.rate");
  EwmaRate& b = registry.ewma("test.window.rate");
  EXPECT_EQ(&a, &b);
  SlidingHistogram& c = registry.sliding_histogram("test.window.hist");
  SlidingHistogram& d = registry.sliding_histogram("test.window.hist");
  EXPECT_EQ(&c, &d);
}

TEST(MetricsRegistry, VisitorSeesWindowedMetrics) {
  MetricsRegistry registry;
  registry.ewma("test.visit.rate").record(3);
  registry.sliding_histogram("test.visit.hist").record(0.5);
  int ewmas = 0;
  int slidings = 0;
  MetricsRegistry::Visitor visitor;
  visitor.on_ewma = [&](const std::string&, const EwmaRate&) { ++ewmas; };
  visitor.on_sliding = [&](const std::string&, const SlidingHistogram&) {
    ++slidings;
  };
  registry.visit(visitor);
  EXPECT_EQ(ewmas, 1);
  EXPECT_EQ(slidings, 1);
}

}  // namespace
}  // namespace arams::obs
