// Thread pool and the virtual-core scaling driver.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>

#include "data/synthetic.hpp"
#include "linalg/blas.hpp"
#include "linalg/norms.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/virtual_cores.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace arams::parallel {
namespace {

using linalg::Matrix;

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<int> hits(50, 0);
  pool.parallel_for(50, [&hits](std::size_t i) { hits[i] = 1; });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(4,
                        [](std::size_t i) {
                          if (i == 2) throw std::runtime_error("task failed");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, DefaultSizeIsAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, OnWorkerThreadIsPoolSpecific) {
  ThreadPool pool(2);
  ThreadPool other(2);
  EXPECT_FALSE(pool.on_worker_thread());
  bool inside_own = false;
  bool inside_other = true;
  pool.submit([&] {
        inside_own = pool.on_worker_thread();
        inside_other = other.on_worker_thread();
      })
      .get();
  EXPECT_TRUE(inside_own);
  EXPECT_FALSE(inside_other);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  // A shard task whose inner kernel dispatches onto the same pool must not
  // block on futures served by its own queue: the nested parallel_for runs
  // inline on the calling worker. With every worker occupied by an outer
  // task, a queue-based nested dispatch would deadlock this test.
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.parallel_for(4, [&pool, &counter](std::size_t) {
    pool.parallel_for(8, [&counter](std::size_t) { ++counter; });
  });
  EXPECT_EQ(counter.load(), 32);
}

Matrix shard_data(std::size_t rows, std::size_t d, std::uint64_t seed) {
  Matrix m(rows, d);
  Rng rng(seed);
  for (std::size_t i = 0; i < rows; ++i) {
    rng.fill_normal(m.row(i));
  }
  return m;
}

ScalingConfig base_scaling(std::size_t cores, MergeStrategy strategy) {
  ScalingConfig config;
  config.num_cores = cores;
  config.ell = 8;
  config.strategy = strategy;
  return config;
}

TEST(VirtualCores, ZeroCoresThrows) {
  const ScalingConfig config = base_scaling(0, MergeStrategy::kTree);
  EXPECT_THROW(
      run_sharded_sketch(config, [](std::size_t) { return Matrix(4, 4); }),
      CheckError);
}

TEST(VirtualCores, SingleCoreSkipsMerge) {
  const ScalingConfig config = base_scaling(1, MergeStrategy::kTree);
  const ScalingResult r = run_sharded_sketch(
      config, [](std::size_t) { return shard_data(50, 10, 1); });
  EXPECT_EQ(r.merge_stats.merge_ops, 0);
  EXPECT_EQ(r.critical_path_svds, 0);
  EXPECT_LE(r.sketch.rows(), 8u);
}

TEST(VirtualCores, ShardProviderCalledOncePerCore) {
  std::atomic<int> calls{0};
  const ScalingConfig config = base_scaling(4, MergeStrategy::kTree);
  run_sharded_sketch(config, [&calls](std::size_t core) {
    ++calls;
    return shard_data(30, 8, core);
  });
  EXPECT_EQ(calls.load(), 4);
}

class StrategyCores
    : public ::testing::TestWithParam<std::tuple<MergeStrategy, int>> {};

TEST_P(StrategyCores, SketchSatisfiesGlobalGuarantee) {
  const auto [strategy, cores] = GetParam();
  const ScalingConfig config =
      base_scaling(static_cast<std::size_t>(cores), strategy);

  Matrix full;
  std::vector<Matrix> shards;
  for (int c = 0; c < cores; ++c) {
    Matrix s = shard_data(40, 12, static_cast<std::uint64_t>(c) + 100);
    full = Matrix::vstack(full, s);
    shards.push_back(std::move(s));
  }
  const ScalingResult r = run_sharded_sketch(
      config, [&shards](std::size_t core) { return shards[core]; });

  Rng power(3);
  const double err = linalg::covariance_error(full, r.sketch, power, 150);
  const double bound =
      linalg::frobenius_norm_squared(full) / static_cast<double>(config.ell);
  EXPECT_LE(err, 2.0 * bound);
  EXPECT_GT(r.makespan_seconds, 0.0);
  EXPECT_GE(r.total_work_seconds, r.local_phase_seconds);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StrategyCores,
    ::testing::Combine(::testing::Values(MergeStrategy::kTree,
                                         MergeStrategy::kSerial),
                       ::testing::Values(1, 2, 4, 8)));

TEST(VirtualCores, TreeBeatsSerialOnCriticalPath) {
  constexpr std::size_t kCores = 16;
  const auto provider = [](std::size_t core) {
    return shard_data(30, 10, core + 7);
  };
  const ScalingResult tree = run_sharded_sketch(
      base_scaling(kCores, MergeStrategy::kTree), provider);
  const ScalingResult serial = run_sharded_sketch(
      base_scaling(kCores, MergeStrategy::kSerial), provider);
  EXPECT_EQ(tree.critical_path_svds, 4);    // log2(16)
  EXPECT_EQ(serial.critical_path_svds, 15); // P − 1
  // Same total merge work.
  EXPECT_EQ(tree.merge_stats.merge_ops, serial.merge_stats.merge_ops);
}

TEST(VirtualCores, ThreadedRunMatchesSequentialSketchQuality) {
  constexpr std::size_t kCores = 4;
  std::vector<Matrix> shards;
  Matrix full;
  for (std::size_t c = 0; c < kCores; ++c) {
    Matrix s = shard_data(40, 10, c + 55);
    full = Matrix::vstack(full, s);
    shards.push_back(std::move(s));
  }
  ScalingConfig config = base_scaling(kCores, MergeStrategy::kTree);
  config.use_threads = true;
  const ScalingResult r = run_sharded_sketch(
      config, [&shards](std::size_t core) { return shards[core]; });
  Rng power(5);
  const double err = linalg::covariance_error(full, r.sketch, power, 150);
  EXPECT_LE(err, 2.0 * linalg::frobenius_norm_squared(full) / 8.0);
}

TEST(VirtualCores, TreePoolExecutesTheMergeForReal) {
  // kTreePool runs the reduction on the shared pool. Its sketch must be
  // bitwise the simulated tree's (the reduction structure is fixed;
  // scheduling decides only when a group runs), its merge phase is the
  // measured wall (no comm model), and the measured makespan is also
  // surfaced for the modeled strategies.
  constexpr std::size_t kCores = 8;
  std::vector<Matrix> shards;
  for (std::size_t c = 0; c < kCores; ++c) {
    shards.push_back(shard_data(30, 10, c + 200));
  }
  const auto provider = [&shards](std::size_t core) {
    return shards[core];
  };
  const ScalingResult tree = run_sharded_sketch(
      base_scaling(kCores, MergeStrategy::kTree), provider);
  const ScalingResult pooled = run_sharded_sketch(
      base_scaling(kCores, MergeStrategy::kTreePool), provider);

  EXPECT_EQ(Matrix::max_abs_diff(pooled.sketch, tree.sketch), 0.0);
  EXPECT_EQ(pooled.merge_stats.merge_ops, tree.merge_stats.merge_ops);
  EXPECT_EQ(pooled.critical_path_svds, tree.critical_path_svds);
  EXPECT_GT(pooled.merge_phase_measured_seconds, 0.0);
  EXPECT_DOUBLE_EQ(pooled.merge_phase_seconds,
                   pooled.merge_stats.critical_path_seconds_measured);
  // The modeled strategies report the measured wall alongside the model.
  EXPECT_GT(tree.merge_phase_measured_seconds, 0.0);
  EXPECT_EQ(tree.merge_phase_measured_seconds,
            tree.merge_stats.critical_path_seconds_measured);
}

TEST(CommModel, CostIsLatencyPlusTransfer) {
  CommModel model;
  model.latency_seconds = 1e-3;
  model.bytes_per_second = 1e6;
  EXPECT_DOUBLE_EQ(model.cost(2e6), 1e-3 + 2.0);
}

TEST(VirtualCores, MakespanDecomposes) {
  const ScalingConfig config = base_scaling(8, MergeStrategy::kTree);
  const ScalingResult r = run_sharded_sketch(
      config, [](std::size_t core) { return shard_data(30, 10, core); });
  EXPECT_NEAR(r.makespan_seconds,
              r.local_phase_seconds + r.merge_phase_seconds, 1e-12);
}

}  // namespace
}  // namespace arams::parallel
