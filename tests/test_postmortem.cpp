// Post-mortem dumps: the voluntary dump path end-to-end (dump → parse →
// validate), the v1 parser on golden and malformed input, and the
// truncation semantics doctors rely on. The signal path itself is
// exercised by the crash-drill integration test (tools/check_crash_drill.sh),
// not here — a unit test cannot survive its own SIGSEGV.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/flight_recorder.hpp"
#include "obs/postmortem.hpp"

namespace arams::obs {
namespace {

std::filesystem::path make_dump_dir() {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "arams_postmortem_test";
  std::filesystem::create_directories(dir);
  return dir;
}

const char* kGoldenDump =
    "ARAMS-POSTMORTEM v1\n"
    "reason=signal:SIGSEGV\n"
    "pid=4242\n"
    "uptime=12.500000\n"
    "build=version=1.0.0 git=abc1234 compiler=GNU march=baseline\n"
    "[backtrace]\n"
    "./arams(+0x1234) [0x55]\n"
    "./arams(main+0x10) [0x56]\n"
    "[flight-recorder]\n"
    "t=12.400000 code=batch_sketched shot=17 d=64 v=0.003000 tid=0\n"
    "[metrics]\n"
    "arams_fd_shrink_count_total 9\n"
    "[health]\n"
    "{\"t\":12.1,\"from\":\"ok\",\"to\":\"degraded\",\"reason\":\"x\"}\n"
    "[end]\n";

// ------------------------------------------------------------------ parser

TEST(PostmortemParse, GoldenDumpRoundTrips) {
  std::istringstream in(kGoldenDump);
  PostmortemReport report;
  std::string error;
  ASSERT_TRUE(parse_postmortem(in, report, &error)) << error;
  EXPECT_EQ(report.version, 1);
  EXPECT_EQ(report.reason, "signal:SIGSEGV");
  EXPECT_EQ(report.pid, "4242");
  EXPECT_EQ(report.uptime, "12.500000");
  EXPECT_EQ(report.build,
            "version=1.0.0 git=abc1234 compiler=GNU march=baseline");
  ASSERT_EQ(report.backtrace.size(), 2u);
  EXPECT_EQ(report.backtrace[1], "./arams(main+0x10) [0x56]");
  ASSERT_EQ(report.flight_lines.size(), 1u);
  EXPECT_NE(report.flight_lines[0].find("code=batch_sketched"),
            std::string::npos);
  ASSERT_EQ(report.metrics_lines.size(), 1u);
  ASSERT_EQ(report.health_lines.size(), 1u);
  EXPECT_TRUE(report.complete);
  EXPECT_TRUE(validate_postmortem(report, &error)) << error;
}

TEST(PostmortemParse, RejectsBadMagic) {
  std::istringstream in("not a postmortem\nreason=x\n");
  PostmortemReport report;
  std::string error;
  EXPECT_FALSE(parse_postmortem(in, report, &error));
  EXPECT_EQ(error, "bad magic line");

  std::istringstream empty("");
  PostmortemReport report2;
  EXPECT_FALSE(parse_postmortem(empty, report2, &error));
  EXPECT_EQ(error, "empty file");
}

TEST(PostmortemParse, TruncatedDumpParsesButFailsValidation) {
  // Cut the golden dump off before [end] — the crash truncated the file.
  std::string truncated(kGoldenDump);
  truncated.resize(truncated.find("[end]"));
  std::istringstream in(truncated);
  PostmortemReport report;
  ASSERT_TRUE(parse_postmortem(in, report));  // still inspectable
  EXPECT_FALSE(report.complete);
  std::string error;
  EXPECT_FALSE(validate_postmortem(report, &error));
  EXPECT_NE(error.find("truncated"), std::string::npos);
}

TEST(PostmortemParse, ToleratesUnknownHeadersAndBlankLines) {
  std::string dump(kGoldenDump);
  dump.insert(dump.find("[backtrace]"), "future_header=whatever\n\n");
  std::istringstream in(dump);
  PostmortemReport report;
  std::string error;
  ASSERT_TRUE(parse_postmortem(in, report, &error)) << error;
  EXPECT_TRUE(validate_postmortem(report, &error)) << error;
}

TEST(PostmortemValidate, FlagsEachMissingIngredient) {
  std::istringstream in(kGoldenDump);
  PostmortemReport good;
  ASSERT_TRUE(parse_postmortem(in, good));

  PostmortemReport report = good;
  report.reason.clear();
  std::string error;
  EXPECT_FALSE(validate_postmortem(report, &error));
  EXPECT_NE(error.find("reason"), std::string::npos);

  report = good;
  report.build.clear();
  EXPECT_FALSE(validate_postmortem(report, &error));
  EXPECT_NE(error.find("build"), std::string::npos);

  report = good;
  report.backtrace.clear();
  EXPECT_FALSE(validate_postmortem(report, &error));
  EXPECT_NE(error.find("backtrace"), std::string::npos);

  report = good;
  report.metrics_lines.clear();
  EXPECT_FALSE(validate_postmortem(report, &error));
  EXPECT_NE(error.find("metrics"), std::string::npos);
}

// ------------------------------------------------------------ dump_now path

TEST(Postmortem, DumpNowWritesAValidatableFile) {
  const std::filesystem::path dir = make_dump_dir();
  PostmortemConfig config;
  config.dir = dir.string();
  configure_postmortem(config);
  install_postmortem_handlers();
  EXPECT_FALSE(postmortem_autodump_enabled());  // off unless armed

  // Give the dump something to journal and snapshot.
  flight_recorder().enable(true);
  flight_recorder().record(FlightCode::kCustom, /*shot_id=*/31337);
  refresh_postmortem_snapshot();

  const int before = postmortem_dump_count();
  ASSERT_TRUE(dump_postmortem_now("unit_test"));
  EXPECT_EQ(postmortem_dump_count(), before + 1);

  const std::string path = last_postmortem_path();
  ASSERT_FALSE(path.empty());
  EXPECT_NE(path.find("postmortem-"), std::string::npos);
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "dump file missing: " << path;

  PostmortemReport report;
  std::string error;
  ASSERT_TRUE(parse_postmortem(in, report, &error)) << error;
  EXPECT_TRUE(validate_postmortem(report, &error)) << error;
  EXPECT_EQ(report.reason, "unit_test");
  EXPECT_NE(report.build.find("version="), std::string::npos);
  // The journaled event made it into the flight-recorder section.
  bool saw_event = false;
  for (const std::string& line : report.flight_lines) {
    if (line.find("shot=31337") != std::string::npos) saw_event = true;
  }
  EXPECT_TRUE(saw_event);
  // The pre-rendered metrics snapshot leads with the build-info gauge.
  bool saw_build_info = false;
  for (const std::string& line : report.metrics_lines) {
    if (line.find("arams_build_info") != std::string::npos) {
      saw_build_info = true;
    }
  }
  EXPECT_TRUE(saw_build_info);
  std::filesystem::remove(path);
}

TEST(Postmortem, EachDumpGetsAFreshSequenceNumber) {
  const std::filesystem::path dir = make_dump_dir();
  PostmortemConfig config;
  config.dir = dir.string();
  config.autodump_on_critical = true;
  configure_postmortem(config);
  EXPECT_TRUE(postmortem_autodump_enabled());

  refresh_postmortem_snapshot();
  ASSERT_TRUE(dump_postmortem_now("first"));
  const std::string first = last_postmortem_path();
  ASSERT_TRUE(dump_postmortem_now("second"));
  const std::string second = last_postmortem_path();
  EXPECT_NE(first, second);
  std::filesystem::remove(first);
  std::filesystem::remove(second);

  // Disarm for any test that runs after this one.
  config.autodump_on_critical = false;
  configure_postmortem(config);
}

}  // namespace
}  // namespace arams::obs
