// Cluster quality metrics: ARI, purity, silhouette.

#include <gtest/gtest.h>

#include "cluster/metrics.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace arams::cluster {
namespace {

using linalg::Matrix;

TEST(Ari, IdenticalLabelingsGiveOne) {
  const std::vector<int> a{0, 0, 1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(a, a), 1.0);
}

TEST(Ari, PermutedLabelsStillOne) {
  const std::vector<int> a{0, 0, 1, 1, 2, 2};
  const std::vector<int> b{2, 2, 0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(a, b), 1.0);
}

TEST(Ari, IndependentLabelingsNearZero) {
  Rng rng(1);
  std::vector<int> a(2000), b(2000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<int>(rng.uniform_index(4));
    b[i] = static_cast<int>(rng.uniform_index(4));
  }
  EXPECT_NEAR(adjusted_rand_index(a, b), 0.0, 0.03);
}

TEST(Ari, PartialAgreementBetweenZeroAndOne) {
  const std::vector<int> a{0, 0, 0, 1, 1, 1};
  const std::vector<int> b{0, 0, 1, 1, 1, 1};
  const double ari = adjusted_rand_index(a, b);
  EXPECT_GT(ari, 0.0);
  EXPECT_LT(ari, 1.0);
}

TEST(Ari, LengthMismatchThrows) {
  EXPECT_THROW(adjusted_rand_index({0, 1}, {0}), CheckError);
}

TEST(Purity, PerfectClusters) {
  const std::vector<int> pred{0, 0, 1, 1};
  const std::vector<int> truth{5, 5, 7, 7};
  EXPECT_DOUBLE_EQ(purity(pred, truth), 1.0);
}

TEST(Purity, NoiseCountsAgainst) {
  const std::vector<int> pred{0, 0, -1, -1};
  const std::vector<int> truth{1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(purity(pred, truth), 0.5);
}

TEST(Purity, MixedClusterTakesMajority) {
  const std::vector<int> pred{0, 0, 0, 0};
  const std::vector<int> truth{1, 1, 1, 2};
  EXPECT_DOUBLE_EQ(purity(pred, truth), 0.75);
}

TEST(Purity, EmptyThrows) {
  EXPECT_THROW(purity({}, {}), CheckError);
}

TEST(Silhouette, WellSeparatedNearOne) {
  Matrix pts(20, 2);
  std::vector<int> labels(20);
  Rng rng(2);
  for (std::size_t i = 0; i < 20; ++i) {
    const bool second = i >= 10;
    pts(i, 0) = (second ? 100.0 : 0.0) + 0.1 * rng.normal();
    pts(i, 1) = 0.1 * rng.normal();
    labels[i] = second ? 1 : 0;
  }
  EXPECT_GT(silhouette(pts, labels), 0.95);
}

TEST(Silhouette, OverlappingClustersLow) {
  Matrix pts(40, 2);
  std::vector<int> labels(40);
  Rng rng(3);
  for (std::size_t i = 0; i < 40; ++i) {
    pts(i, 0) = rng.normal();
    pts(i, 1) = rng.normal();
    labels[i] = static_cast<int>(i % 2);  // arbitrary split of one blob
  }
  EXPECT_LT(silhouette(pts, labels), 0.2);
}

TEST(Silhouette, SingleClusterReturnsZero) {
  Matrix pts(5, 2);
  const std::vector<int> labels{0, 0, 0, 0, 0};
  EXPECT_EQ(silhouette(pts, labels), 0.0);
}

TEST(Silhouette, NoiseExcluded) {
  Matrix pts(6, 1);
  for (std::size_t i = 0; i < 6; ++i) {
    pts(i, 0) = (i < 3) ? static_cast<double>(i) * 0.01
                        : 50.0 + static_cast<double>(i) * 0.01;
  }
  const std::vector<int> labels{0, 0, 0, 1, 1, -1};
  EXPECT_GT(silhouette(pts, labels), 0.9);
}

TEST(Silhouette, LabelLengthMismatchThrows) {
  EXPECT_THROW(silhouette(Matrix(3, 1), {0, 1}), CheckError);
}

}  // namespace
}  // namespace arams::cluster
