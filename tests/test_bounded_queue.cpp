// Bounded blocking queue: FIFO order, back-pressure, close semantics,
// threaded producer/consumer integrity.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "stream/bounded_queue.hpp"
#include "util/check.hpp"

namespace arams::stream {
namespace {

TEST(BoundedQueue, ValidatesCapacity) {
  EXPECT_THROW(BoundedQueue<int>(0), CheckError);
}

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(q.push(i));
  }
  for (int i = 0; i < 5; ++i) {
    const auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BoundedQueue, TryPushRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueue, CloseDrainsThenSignalsEnd) {
  BoundedQueue<int> q(4);
  q.push(7);
  q.push(8);
  q.close();
  EXPECT_FALSE(q.push(9));  // rejected after close
  EXPECT_EQ(q.pop().value(), 7);
  EXPECT_EQ(q.pop().value(), 8);
  EXPECT_FALSE(q.pop().has_value());  // drained
}

TEST(BoundedQueue, PopBlocksUntilPush) {
  BoundedQueue<int> q(1);
  std::atomic<int> got{-1};
  std::thread consumer([&] {
    const auto v = q.pop();
    got.store(v.value_or(-2));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(got.load(), -1);  // still blocked
  q.push(42);
  consumer.join();
  EXPECT_EQ(got.load(), 42);
}

TEST(BoundedQueue, PushBlocksUntilPop) {
  BoundedQueue<int> q(1);
  q.push(1);
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    q.push(2);  // blocks: queue full
    second_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_pushed.load());
  EXPECT_EQ(q.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedQueue, ProducerConsumerIntegrity) {
  // One producer, two consumers: every item delivered exactly once.
  constexpr int kItems = 2000;
  BoundedQueue<int> q(16);
  std::vector<char> seen(kItems, 0);
  std::mutex seen_mutex;

  const auto consume = [&] {
    while (auto v = q.pop()) {
      const std::lock_guard<std::mutex> lock(seen_mutex);
      ASSERT_EQ(seen[static_cast<std::size_t>(*v)], 0);
      seen[static_cast<std::size_t>(*v)] = 1;
    }
  };
  std::thread c1(consume), c2(consume);
  for (int i = 0; i < kItems; ++i) {
    ASSERT_TRUE(q.push(i));
  }
  q.close();
  c1.join();
  c2.join();
  const long total = std::accumulate(seen.begin(), seen.end(), 0L);
  EXPECT_EQ(total, kItems);
}

TEST(BoundedQueue, CloseWakesBlockedConsumers) {
  BoundedQueue<int> q(4);
  std::atomic<int> finished{0};
  std::thread c1([&] {
    while (q.pop().has_value()) {
    }
    ++finished;
  });
  std::thread c2([&] {
    while (q.pop().has_value()) {
    }
    ++finished;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  c1.join();
  c2.join();
  EXPECT_EQ(finished.load(), 2);
}

TEST(BoundedQueue, MoveOnlyPayloadsSupported) {
  BoundedQueue<std::unique_ptr<int>> q(2);
  q.push(std::make_unique<int>(5));
  const auto v = q.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 5);
}

}  // namespace
}  // namespace arams::stream
