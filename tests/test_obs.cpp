// Telemetry subsystem: metrics registry, trace spans, stage reports.

#include <gtest/gtest.h>

#include <array>
#include <sstream>
#include <thread>

#include "obs/build_info.hpp"
#include "obs/export_prom.hpp"
#include "obs/metrics.hpp"
#include "obs/stage_report.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "util/check.hpp"

namespace arams::obs {
namespace {

// ---------------------------------------------------------------- Histogram

TEST(Histogram, BucketBoundariesAreInclusiveUpperBounds) {
  const std::array<double, 3> bounds{1.0, 2.0, 4.0};
  Histogram h{std::span<const double>(bounds)};
  // A value lands in the first bucket whose upper bound is >= value.
  EXPECT_EQ(h.bucket_index(0.5), 0u);
  EXPECT_EQ(h.bucket_index(1.0), 0u);
  EXPECT_EQ(h.bucket_index(1.5), 1u);
  EXPECT_EQ(h.bucket_index(2.0), 1u);
  EXPECT_EQ(h.bucket_index(4.0), 2u);
  EXPECT_EQ(h.bucket_index(4.5), 3u);  // overflow == bounds.size()
}

TEST(Histogram, ObserveFillsBucketsCountAndSum) {
  const std::array<double, 3> bounds{1.0, 2.0, 4.0};
  Histogram h{std::span<const double>(bounds)};
  h.observe(0.5);
  h.observe(1.0);
  h.observe(3.0);
  h.observe(100.0);
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.sum(), 104.5);
  const std::vector<long> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 0);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 1);
}

TEST(Histogram, RejectsEmptyOrUnsortedBounds) {
  EXPECT_THROW(Histogram{std::span<const double>{}}, CheckError);
  const std::array<double, 2> unsorted{2.0, 1.0};
  EXPECT_THROW(Histogram{std::span<const double>(unsorted)}, CheckError);
  const std::array<double, 2> repeated{1.0, 1.0};
  EXPECT_THROW(Histogram{std::span<const double>(repeated)}, CheckError);
}

TEST(Histogram, DefaultLatencyBoundsAreLogSpaced) {
  const auto bounds = default_latency_bounds();
  ASSERT_EQ(bounds.size(), 8u);
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-6);
  EXPECT_DOUBLE_EQ(bounds.back(), 10.0);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_NEAR(bounds[i] / bounds[i - 1], 10.0, 1e-9);
  }
}

// ----------------------------------------------------------------- Registry

TEST(MetricsRegistry, ReturnsStableReferencesByName) {
  MetricsRegistry registry;
  Counter& a = registry.counter("events");
  a.add(3);
  EXPECT_EQ(&registry.counter("events"), &a);
  EXPECT_EQ(registry.counter("events").value(), 3);
  Gauge& g = registry.gauge("depth");
  g.set(2.5);
  EXPECT_EQ(&registry.gauge("depth"), &g);
  EXPECT_DOUBLE_EQ(registry.gauge("depth").value(), 2.5);
}

TEST(MetricsRegistry, HistogramBoundsFixedAtFirstRegistration) {
  MetricsRegistry registry;
  const std::array<double, 2> bounds{1.0, 2.0};
  Histogram& h = registry.histogram("lat", std::span<const double>(bounds));
  ASSERT_EQ(h.upper_bounds().size(), 2u);
  // A later lookup with different bounds returns the same histogram.
  const std::array<double, 1> other{5.0};
  EXPECT_EQ(&registry.histogram("lat", std::span<const double>(other)), &h);
  EXPECT_EQ(h.upper_bounds().size(), 2u);
  // Empty bounds at first registration fall back to the latency defaults.
  Histogram& d = registry.histogram("lat2");
  EXPECT_EQ(d.upper_bounds().size(), default_latency_bounds().size());
}

TEST(MetricsRegistry, ConcurrentCounterIncrementsAreLossless) {
  MetricsRegistry registry;
  Counter& hits = registry.counter("hits");
  Histogram& lat = registry.histogram("lat");
  constexpr std::size_t kTasks = 64;
  constexpr int kPerTask = 250;
  parallel::ThreadPool pool(4);
  pool.parallel_for(kTasks, [&](std::size_t task) {
    for (int i = 0; i < kPerTask; ++i) {
      hits.add(1);
      lat.observe(1e-5 * static_cast<double>(task + 1));
    }
  });
  EXPECT_EQ(hits.value(), static_cast<long>(kTasks) * kPerTask);
  EXPECT_EQ(lat.count(), static_cast<long>(kTasks) * kPerTask);
  long bucket_total = 0;
  for (const long c : lat.bucket_counts()) bucket_total += c;
  EXPECT_EQ(bucket_total, lat.count());
}

TEST(MetricsRegistry, JsonLinesExportOnePerMetric) {
  MetricsRegistry registry;
  registry.counter("c").add(7);
  registry.gauge("g").set(1.5);
  const std::array<double, 2> bounds{1.0, 2.0};
  registry.histogram("h", std::span<const double>(bounds)).observe(1.5);
  std::ostringstream out;
  registry.write_json_lines(out);
  std::istringstream in(out.str());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], R"({"type":"counter","name":"c","value":7})");
  EXPECT_EQ(lines[1], R"({"type":"gauge","name":"g","value":1.5})");
  EXPECT_EQ(lines[2],
            R"({"type":"histogram","name":"h","count":1,"sum":1.5,)"
            R"("bounds":[1,2],"buckets":[0,1,0]})");
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsRegistrations) {
  MetricsRegistry registry;
  Counter& c = registry.counter("c");
  c.add(5);
  registry.gauge("g").set(3.0);
  registry.reset();
  EXPECT_EQ(&registry.counter("c"), &c);
  EXPECT_EQ(c.value(), 0);
  EXPECT_DOUBLE_EQ(registry.gauge("g").value(), 0.0);
}

// -------------------------------------------------------------------- Spans

TEST(ScopedSpan, RecordsNestingDepthAndCompletionOrder) {
  TraceRecorder recorder;
  recorder.enable(true);
  EXPECT_EQ(ScopedSpan::current_depth(), 0);
  {
    const ScopedSpan outer("outer", recorder);
    EXPECT_EQ(ScopedSpan::current_depth(), 1);
    {
      const ScopedSpan inner("inner", recorder);
      EXPECT_EQ(ScopedSpan::current_depth(), 2);
    }
    EXPECT_EQ(ScopedSpan::current_depth(), 1);
  }
  EXPECT_EQ(ScopedSpan::current_depth(), 0);

  const std::vector<SpanRecord> spans = recorder.spans();
  ASSERT_EQ(spans.size(), 2u);
  // Spans are recorded at destruction, so the child lands first.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].depth, 1);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].depth, 0);
  // The child is contained in the parent.
  EXPECT_GE(spans[0].start_us, spans[1].start_us);
  EXPECT_LE(spans[0].duration_us, spans[1].duration_us);
}

TEST(ScopedSpan, DisabledRecorderRecordsNothing) {
  TraceRecorder recorder;
  {
    const ScopedSpan span("ignored", recorder);
    // The span *stack* is maintained even when recording is off — the
    // sampling profiler reads it — but no SpanRecord may be produced.
    EXPECT_EQ(ScopedSpan::current_depth(), 1);
  }
  EXPECT_EQ(ScopedSpan::current_depth(), 0);
  EXPECT_TRUE(recorder.spans().empty());
}

TEST(TraceRecorder, ChromeTraceGolden) {
  TraceRecorder recorder;
  // Injected deterministic spans: two threads, one nested child.
  recorder.record(SpanRecord{"pipeline.analyze", 77, 0.0, 100.0, 0});
  recorder.record(SpanRecord{"pipeline.sketch", 77, 10.0, 40.0, 1});
  recorder.record(SpanRecord{"scaling.shard0", 1234, 12.0, 30.0, 2});
  std::ostringstream out;
  recorder.write_chrome_trace(out);
  const std::string expected =
      R"({"displayTimeUnit":"ms","traceEvents":[)"
      R"({"name":"pipeline.analyze","cat":"arams","ph":"X","ts":0,)"
      R"("dur":100,"pid":1,"tid":1,"args":{"depth":0}},)"
      R"({"name":"pipeline.sketch","cat":"arams","ph":"X","ts":10,)"
      R"("dur":40,"pid":1,"tid":1,"args":{"depth":1}},)"
      R"({"name":"scaling.shard0","cat":"arams","ph":"X","ts":12,)"
      R"("dur":30,"pid":1,"tid":2,"args":{"depth":2}}]})"
      "\n";
  EXPECT_EQ(out.str(), expected);
}

// ------------------------------------------------- Prometheus conformance

TEST(PrometheusExport, CounterNamesCarryTheTotalSuffix) {
  EXPECT_EQ(prometheus_counter_name("fd.shrink_count"),
            "arams_fd_shrink_count_total");
  // Already-suffixed names are not doubled.
  EXPECT_EQ(prometheus_counter_name("queue.rejected_total"),
            "arams_queue_rejected_total");
}

TEST(PrometheusExport, LabelValueEscaping) {
  EXPECT_EQ(prometheus_escape_label_value("plain"), "plain");
  EXPECT_EQ(prometheus_escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(prometheus_escape_label_value("a\"b"), "a\\\"b");
  EXPECT_EQ(prometheus_escape_label_value("a\nb"), "a\\nb");
  EXPECT_EQ(prometheus_escape_label_value("\\\"\n"), "\\\\\\\"\\n");
}

TEST(PrometheusExport, HelpTextEscaping) {
  EXPECT_EQ(prometheus_escape_help("plain help"), "plain help");
  EXPECT_EQ(prometheus_escape_help("back\\slash"), "back\\\\slash");
  EXPECT_EQ(prometheus_escape_help("two\nlines"), "two\\nlines");
  // Quotes are legal in HELP text and must pass through untouched.
  EXPECT_EQ(prometheus_escape_help("say \"hi\""), "say \"hi\"");
}

TEST(PrometheusExport, ExpositionLeadsWithBuildInfoAndOrdersHeaders) {
  MetricsRegistry registry;
  registry.counter("spec.events").add(3);
  registry.gauge("spec.depth").set(1.5);
  std::ostringstream out;
  write_prometheus(out, registry);
  const std::string text = out.str();

  // The first family is the build-info gauge, constant 1, all six labels.
  EXPECT_EQ(text.rfind("# HELP arams_build_info", 0), 0u);
  const std::size_t sample = text.find("arams_build_info{");
  ASSERT_NE(sample, std::string::npos);
  const std::size_t close = text.find("} 1\n", sample);
  ASSERT_NE(close, std::string::npos);
  const std::string labels = text.substr(sample, close - sample);
  for (const char* label : {"version=", "git=", "compiler=", "march=",
                            "sanitize=", "build_type="}) {
    EXPECT_NE(labels.find(label), std::string::npos) << label;
  }

  // Counters expose under the _total name; HELP precedes TYPE precedes
  // the sample for each family.
  const std::size_t help_pos =
      text.find("# HELP arams_spec_events_total ");
  const std::size_t type_pos =
      text.find("# TYPE arams_spec_events_total counter");
  const std::size_t sample_pos = text.find("\narams_spec_events_total 3");
  ASSERT_NE(help_pos, std::string::npos);
  ASSERT_NE(type_pos, std::string::npos);
  ASSERT_NE(sample_pos, std::string::npos);
  EXPECT_LT(help_pos, type_pos);
  EXPECT_LT(type_pos, sample_pos);
  // Gauges are not suffixed.
  EXPECT_NE(text.find("\narams_spec_depth 1.5"), std::string::npos);
  EXPECT_EQ(text.find("arams_spec_depth_total"), std::string::npos);
}

TEST(PrometheusExport, BuildInfoLineNamesEveryField) {
  const std::string line = build_info_line();
  for (const char* field : {"version=", "git=", "compiler=", "march=",
                            "sanitize=", "build="}) {
    EXPECT_NE(line.find(field), std::string::npos) << field;
  }
}

// ------------------------------------------------------------- StageReport

TEST(StageReport, SetAddAndLookup) {
  StageReport report;
  report.set_seconds("sketch", 0.5);
  report.add_seconds("sketch", 0.25);
  report.add_seconds("embed", 1.0);
  report.add_counter("svd", 3);
  EXPECT_DOUBLE_EQ(report.seconds("sketch"), 0.75);
  EXPECT_DOUBLE_EQ(report.seconds("embed"), 1.0);
  EXPECT_DOUBLE_EQ(report.seconds("missing"), 0.0);
  EXPECT_TRUE(report.has_stage("sketch"));
  EXPECT_FALSE(report.has_stage("missing"));
  EXPECT_EQ(report.counter("svd"), 3);
  EXPECT_EQ(report.counter("missing"), 0);
  EXPECT_DOUBLE_EQ(report.total_seconds(), 1.75);
}

TEST(StageReport, AccumulatePreservesInsertionOrder) {
  StageReport a;
  a.set_seconds("sketch", 1.0);
  a.add_counter("svd", 2);
  StageReport b;
  b.set_seconds("sketch", 0.5);
  b.set_seconds("merge", 0.25);
  b.add_counter("svd", 1);
  a += b;
  ASSERT_EQ(a.stages().size(), 2u);
  EXPECT_EQ(a.stages()[0].stage, "sketch");
  EXPECT_DOUBLE_EQ(a.stages()[0].seconds, 1.5);
  EXPECT_EQ(a.stages()[1].stage, "merge");
  EXPECT_EQ(a.counter("svd"), 3);
}

TEST(StageReport, JsonGolden) {
  StageReport report;
  report.set_seconds("sketch", 0.5);
  report.set_seconds("embed", 1.5);
  report.set_counter("svd", 3);
  std::ostringstream out;
  report.write_json(out);
  EXPECT_EQ(out.str(),
            R"({"stages":{"sketch":0.5,"embed":1.5},"counters":{"svd":3}})");
}

}  // namespace
}  // namespace arams::obs
