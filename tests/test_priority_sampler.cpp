// Priority sampling: unit tests plus the unbiasedness property —
// E[B̃ᵀB̃] = AᵀA over many sampling repetitions.

#include <gtest/gtest.h>

#include <cmath>

#include "core/priority_sampler.hpp"
#include "linalg/blas.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace arams::core {
namespace {

using linalg::Matrix;

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    rng.fill_normal(m.row(i));
  }
  return m;
}

TEST(PrioritySampler, CapacityZeroThrows) {
  PrioritySamplerConfig config;
  config.capacity = 0;
  EXPECT_THROW(PrioritySampler{config}, CheckError);
}

TEST(PrioritySampler, UnderflowKeepsEverythingExactly) {
  PrioritySamplerConfig config;
  config.capacity = 10;
  PrioritySampler sampler(config);
  Rng rng(1);
  const Matrix a = random_matrix(6, 4, rng);
  sampler.push_batch(a);
  const Matrix out = sampler.take();
  EXPECT_EQ(Matrix::max_abs_diff(out, a), 0.0);
  EXPECT_EQ(sampler.last_threshold(), 0.0);
}

TEST(PrioritySampler, OverflowKeepsExactlyCapacity) {
  PrioritySamplerConfig config;
  config.capacity = 5;
  PrioritySampler sampler(config);
  Rng rng(2);
  sampler.push_batch(random_matrix(50, 3, rng));
  const Matrix out = sampler.take();
  EXPECT_EQ(out.rows(), 5u);
  EXPECT_GT(sampler.last_threshold(), 0.0);
}

TEST(PrioritySampler, TakeBeforePushThrows) {
  PrioritySamplerConfig config;
  PrioritySampler sampler(config);
  EXPECT_THROW(sampler.take(), CheckError);
}

TEST(PrioritySampler, ZeroRowsAreNeverSampled) {
  PrioritySamplerConfig config;
  config.capacity = 3;
  PrioritySampler sampler(config);
  Matrix a(10, 2);
  a(4, 0) = 1.0;  // the only non-zero row
  sampler.push_batch(a);
  const Matrix out = sampler.take();
  ASSERT_EQ(out.rows(), 1u);
  EXPECT_GT(linalg::norm2(out.row(0)), 0.0);
}

TEST(PrioritySampler, OutputPreservesStreamOrder) {
  PrioritySamplerConfig config;
  config.capacity = 4;
  config.rescale = false;
  PrioritySampler sampler(config);
  // Increasing-norm rows: the four largest are rows 6..9, in order.
  Matrix a(10, 1);
  for (std::size_t i = 0; i < 10; ++i) {
    a(i, 0) = static_cast<double>(i + 1) * 100.0;
  }
  sampler.push_batch(a);
  const Matrix out = sampler.take();
  ASSERT_EQ(out.rows(), 4u);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_GT(out(i, 0), out(i - 1, 0));
  }
}

TEST(PrioritySampler, HeavyRowsAlmostAlwaysKept) {
  // One row dominating the mass must essentially always survive.
  int kept = 0;
  constexpr int kReps = 100;
  for (int rep = 0; rep < kReps; ++rep) {
    PrioritySamplerConfig config;
    config.capacity = 3;
    config.seed = static_cast<std::uint64_t>(rep);
    PrioritySampler sampler(config);
    Matrix a(20, 2);
    Rng rng(static_cast<std::uint64_t>(rep) + 1000);
    for (std::size_t i = 0; i < 20; ++i) {
      a(i, 0) = 0.01 * rng.normal();
    }
    a(7, 0) = 50.0;  // the heavy row
    sampler.push_batch(a);
    const Matrix out = sampler.take();
    for (std::size_t i = 0; i < out.rows(); ++i) {
      if (std::abs(out(i, 0)) >= 49.0) {
        ++kept;
        break;
      }
    }
  }
  EXPECT_GE(kept, 99);
}

TEST(PrioritySampler, RescaledCovarianceIsUnbiased) {
  // Average B̃ᵀB̃ over many seeds and compare to AᵀA entrywise.
  Rng data_rng(3);
  const Matrix a = random_matrix(40, 4, data_rng);
  const Matrix target = linalg::gram_cols(a);

  Matrix accum(4, 4);
  constexpr int kReps = 600;
  for (int rep = 0; rep < kReps; ++rep) {
    PrioritySamplerConfig config;
    config.capacity = 20;
    config.seed = static_cast<std::uint64_t>(rep) * 7 + 1;
    PrioritySampler sampler(config);
    sampler.push_batch(a);
    const Matrix s = sampler.take();
    const Matrix g = linalg::gram_cols(s);
    for (std::size_t i = 0; i < 4; ++i) {
      for (std::size_t j = 0; j < 4; ++j) {
        accum(i, j) += g(i, j) / kReps;
      }
    }
  }
  const double scale = linalg::frobenius_norm(target);
  EXPECT_LT(Matrix::max_abs_diff(accum, target), 0.08 * scale);
}

TEST(PrioritySampler, RowNormWeightModeRuns) {
  PrioritySamplerConfig config;
  config.capacity = 5;
  config.weight = SamplingWeight::kRowNorm;
  PrioritySampler sampler(config);
  Rng rng(4);
  sampler.push_batch(random_matrix(30, 3, rng));
  EXPECT_EQ(sampler.take().rows(), 5u);
}

TEST(PrioritySampler, ReusableAfterTake) {
  PrioritySamplerConfig config;
  config.capacity = 4;
  PrioritySampler sampler(config);
  Rng rng(5);
  sampler.push_batch(random_matrix(10, 2, rng));
  EXPECT_EQ(sampler.take().rows(), 4u);
  sampler.push_batch(random_matrix(3, 6, rng));  // new dimension is fine
  EXPECT_EQ(sampler.take().rows(), 3u);
}

class SampleFraction : public ::testing::TestWithParam<double> {};

TEST_P(SampleFraction, KeepsRequestedFraction) {
  const double beta = GetParam();
  Rng rng(6);
  const Matrix a = random_matrix(100, 5, rng);
  const Matrix out = priority_sample(a, beta, PrioritySamplerConfig{});
  EXPECT_EQ(out.rows(), static_cast<std::size_t>(std::ceil(100 * beta)));
}

INSTANTIATE_TEST_SUITE_P(Fractions, SampleFraction,
                         ::testing::Values(0.1, 0.25, 0.5, 0.8, 0.99));

TEST(PrioritySample, FractionOneReturnsInputUnchanged) {
  Rng rng(7);
  const Matrix a = random_matrix(10, 3, rng);
  const Matrix out = priority_sample(a, 1.0, PrioritySamplerConfig{});
  EXPECT_EQ(Matrix::max_abs_diff(out, a), 0.0);
}

TEST(PrioritySample, InvalidFractionThrows) {
  const Matrix a(5, 2);
  EXPECT_THROW(priority_sample(a, 0.0, PrioritySamplerConfig{}), CheckError);
  EXPECT_THROW(priority_sample(a, 1.5, PrioritySamplerConfig{}), CheckError);
}

}  // namespace
}  // namespace arams::core
