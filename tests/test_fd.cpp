// Frequent Directions: unit tests plus the central property test — the FD
// covariance guarantee ‖AᵀA − BᵀB‖₂ ≤ ‖A‖²_F / ℓ and positive
// semidefiniteness of AᵀA − BᵀB, swept over sketch sizes and spectra.

#include <gtest/gtest.h>

#include <cmath>

#include "core/fd.hpp"
#include "data/synthetic.hpp"
#include "linalg/blas.hpp"
#include "linalg/norms.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace arams::core {
namespace {

using linalg::Matrix;

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    rng.fill_normal(m.row(i));
  }
  return m;
}

TEST(Fd, RejectsTinyEll) {
  EXPECT_THROW(FrequentDirections(FdConfig{1, true}), CheckError);
}

TEST(Fd, EmptySketchIsEmpty) {
  FrequentDirections fd(FdConfig{4, true});
  EXPECT_TRUE(fd.sketch().empty());
  EXPECT_EQ(fd.dim(), 0u);
}

TEST(Fd, DimensionFixedByFirstRow) {
  FrequentDirections fd(FdConfig{4, true});
  const std::vector<double> row3{1.0, 2.0, 3.0};
  const std::vector<double> row2{1.0, 2.0};
  fd.append(row3);
  EXPECT_EQ(fd.dim(), 3u);
  EXPECT_THROW(fd.append(row2), CheckError);
}

TEST(Fd, FewRowsAreStoredExactly) {
  FrequentDirections fd(FdConfig{8, true});
  Rng rng(1);
  const Matrix a = random_matrix(5, 6, rng);
  fd.append_batch(a);
  // Fewer rows than the buffer: sketch is the data itself, no shrink ran.
  EXPECT_EQ(fd.stats().svd_count, 0);
  EXPECT_EQ(Matrix::max_abs_diff(fd.sketch(), a), 0.0);
}

TEST(Fd, ShrinkTriggersOncePerEllAppends) {
  FrequentDirections fd(FdConfig{4, true});
  Rng rng(2);
  const Matrix a = random_matrix(40, 5, rng);
  fd.append_batch(a);
  // Buffer of 2ℓ=8: first shrink after the 9th row, then roughly every
  // ℓ+1 rows (shrinks leave ≤ ℓ−1 survivors).
  EXPECT_GE(fd.stats().svd_count, 5);
  EXPECT_LE(fd.stats().svd_count, 9);
  EXPECT_EQ(fd.stats().rows_processed, 40);
}

TEST(Fd, CompressBoundsSketchRows) {
  FrequentDirections fd(FdConfig{4, true});
  Rng rng(3);
  fd.append_batch(random_matrix(23, 6, rng));
  fd.compress();
  EXPECT_LE(fd.sketch().rows(), 4u);
}

TEST(Fd, SlowVariantMatchesGuaranteeToo) {
  Rng rng(4);
  const Matrix a = random_matrix(30, 8, rng);
  FrequentDirections fd(FdConfig{5, /*fast=*/false});
  fd.append_batch(a);
  fd.compress();
  Rng power(5);
  const double err = linalg::covariance_error(a, fd.sketch(), power, 150);
  EXPECT_LE(err, linalg::frobenius_norm_squared(a) / 5.0 * 1.001);
}

TEST(Fd, SketchRowsStayOrthogonalAfterShrink) {
  FrequentDirections fd(FdConfig{4, true});
  Rng rng(6);
  fd.append_batch(random_matrix(8, 7, rng));  // fill the 2ℓ buffer exactly
  fd.compress();                              // one shrink, no raw rows after
  ASSERT_GE(fd.stats().svd_count, 1);
  const Matrix s = fd.sketch();
  for (std::size_t i = 0; i < s.rows(); ++i) {
    for (std::size_t j = i + 1; j < s.rows(); ++j) {
      EXPECT_NEAR(linalg::dot(s.row(i), s.row(j)), 0.0, 1e-8);
    }
  }
}

TEST(Fd, NoInteriorZeroRows) {
  FrequentDirections fd(FdConfig{4, true});
  Rng rng(7);
  fd.append_batch(random_matrix(50, 5, rng));
  fd.compress();
  const Matrix s = fd.sketch();
  for (std::size_t i = 0; i < s.rows(); ++i) {
    EXPECT_GT(linalg::norm2(s.row(i)), 0.0);
  }
}

TEST(Fd, BasisHasOrthonormalRows) {
  FrequentDirections fd(FdConfig{5, true});
  Rng rng(8);
  fd.append_batch(random_matrix(30, 9, rng));
  const Matrix basis = fd.basis(3);
  ASSERT_LE(basis.rows(), 3u);
  for (std::size_t i = 0; i < basis.rows(); ++i) {
    EXPECT_NEAR(linalg::norm2(basis.row(i)), 1.0, 1e-9);
    for (std::size_t j = i + 1; j < basis.rows(); ++j) {
      EXPECT_NEAR(linalg::dot(basis.row(i), basis.row(j)), 0.0, 1e-9);
    }
  }
}

TEST(Fd, LastSpectrumDescends) {
  FrequentDirections fd(FdConfig{4, true});
  Rng rng(9);
  fd.append_batch(random_matrix(20, 6, rng));
  fd.compress();
  const auto& spec = fd.last_spectrum();
  ASSERT_FALSE(spec.empty());
  for (std::size_t i = 1; i < spec.size(); ++i) {
    EXPECT_GE(spec[i - 1], spec[i]);
  }
}

TEST(Fd, ExactForDataWithRankBelowEll) {
  // If rank(A) < ℓ, FD loses nothing: AᵀA = BᵀB up to roundoff.
  data::SyntheticConfig config;
  config.n = 60;
  config.d = 20;
  config.spectrum.kind = data::DecayKind::kStep;
  config.spectrum.count = 3;
  config.spectrum.step_rank = 3;
  config.spectrum.step_floor = 0.0;
  Rng rng(10);
  const Matrix a = data::make_low_rank(config, rng);
  FrequentDirections fd(FdConfig{8, true});
  fd.append_batch(a);
  fd.compress();
  Rng power(11);
  const double err = linalg::covariance_error(a, fd.sketch(), power, 150);
  EXPECT_LT(err, 1e-6);
}

/// The FD guarantee, swept over (ℓ, decay kind).
class FdGuarantee
    : public ::testing::TestWithParam<std::tuple<int, data::DecayKind>> {};

TEST_P(FdGuarantee, CovarianceErrorWithinBound) {
  const auto [ell, kind] = GetParam();
  data::SyntheticConfig config;
  config.n = 150;
  config.d = 40;
  config.spectrum.kind = kind;
  config.spectrum.count = 30;
  config.spectrum.rate = 0.15;
  Rng rng(static_cast<std::uint64_t>(ell) * 100 +
          static_cast<std::uint64_t>(kind));
  const Matrix a = data::make_low_rank(config, rng);

  FrequentDirections fd(FdConfig{static_cast<std::size_t>(ell), true});
  fd.append_batch(a);
  fd.compress();
  const Matrix b = fd.sketch();
  EXPECT_LE(b.rows(), static_cast<std::size_t>(ell));

  Rng power(999);
  const double err = linalg::covariance_error(a, b, power, 200);
  const double bound = linalg::frobenius_norm_squared(a) /
                       static_cast<double>(ell);
  EXPECT_LE(err, bound * 1.001);
}

TEST_P(FdGuarantee, CovarianceDifferenceIsPsd) {
  const auto [ell, kind] = GetParam();
  data::SyntheticConfig config;
  config.n = 80;
  config.d = 15;
  config.spectrum.kind = kind;
  config.spectrum.count = 12;
  config.spectrum.rate = 0.2;
  Rng rng(static_cast<std::uint64_t>(ell) * 31 +
          static_cast<std::uint64_t>(kind));
  const Matrix a = data::make_low_rank(config, rng);

  FrequentDirections fd(FdConfig{static_cast<std::size_t>(ell), true});
  fd.append_batch(a);
  fd.compress();
  const Matrix b = fd.sketch();

  // xᵀ(AᵀA − BᵀB)x ≥ 0 for random probes x.
  Rng probe(static_cast<std::uint64_t>(ell) + 7);
  std::vector<double> x(a.cols()), ax(a.rows()), bx(b.rows());
  for (int trial = 0; trial < 25; ++trial) {
    probe.fill_normal(x);
    linalg::gemv(a, x, ax);
    linalg::gemv(b, x, bx);
    const double quad =
        linalg::norm2_squared(ax) - linalg::norm2_squared(bx);
    EXPECT_GE(quad, -1e-6 * linalg::frobenius_norm_squared(a));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FdGuarantee,
    ::testing::Combine(::testing::Values(4, 8, 16, 24),
                       ::testing::Values(data::DecayKind::kSubExponential,
                                         data::DecayKind::kExponential,
                                         data::DecayKind::kSuperExponential)));

TEST(Fd, StrongerBoundWithLowRankTail) {
  // ‖AᵀA−BᵀB‖ ≤ ‖A−A_k‖²_F/(ℓ−k): with a sharply decaying spectrum the
  // sketch error must be far below the crude ‖A‖²_F/ℓ bound.
  data::SyntheticConfig config;
  config.n = 120;
  config.d = 30;
  config.spectrum.kind = data::DecayKind::kSuperExponential;
  config.spectrum.count = 20;
  config.spectrum.rate = 0.4;
  Rng rng(12);
  const Matrix a = data::make_low_rank(config, rng);
  FrequentDirections fd(FdConfig{16, true});
  fd.append_batch(a);
  fd.compress();
  Rng power(13);
  const double err = linalg::covariance_error(a, fd.sketch(), power, 200);
  const double crude = linalg::frobenius_norm_squared(a) / 16.0;
  EXPECT_LT(err, 0.5 * crude);
}

TEST(Fd, StreamingEqualsBatchOrderSensitivityBounded) {
  // FD is order-dependent, but the guarantee holds for any order; check
  // both orders satisfy the bound on the same data.
  Rng rng(14);
  const Matrix a = random_matrix(60, 10, rng);
  Matrix reversed(60, 10);
  for (std::size_t i = 0; i < 60; ++i) {
    reversed.set_row(i, a.row(59 - i));
  }
  const double bound = linalg::frobenius_norm_squared(a) / 6.0;
  const Matrix* inputs[] = {&a, &reversed};
  for (const Matrix* m : inputs) {
    FrequentDirections fd(FdConfig{6, true});
    fd.append_batch(*m);
    fd.compress();
    Rng power(15);
    EXPECT_LE(linalg::covariance_error(a, fd.sketch(), power, 150),
              bound * 1.001);
  }
}

}  // namespace
}  // namespace arams::core
