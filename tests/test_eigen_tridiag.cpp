// Tests for the tridiagonal-QR symmetric eigensolver, cross-checked
// against the Jacobi reference on adversarial spectra, plus FD-level
// invariance: the sketch a stream produces must not depend on which
// eigensolver ran the shrinks.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "core/fd.hpp"
#include "linalg/blas.hpp"
#include "linalg/eigen_sym.hpp"
#include "linalg/norms.hpp"
#include "linalg/qr.hpp"
#include "linalg/workspace.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace arams::linalg {
namespace {

Matrix random_symmetric(std::size_t n, Rng& rng) {
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = rng.normal();
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  return a;
}

Matrix random_orthogonal(std::size_t n, Rng& rng) {
  Matrix q(n, n);
  for (std::size_t i = 0; i < n; ++i) rng.fill_normal(q.row(i));
  orthonormalize_columns(q);
  return q;
}

/// Q · diag(values) · Qᵀ for a prescribed spectrum.
Matrix with_spectrum(const Matrix& q, const std::vector<double>& values) {
  Matrix ql = q;
  for (std::size_t i = 0; i < q.rows(); ++i) {
    for (std::size_t j = 0; j < q.cols(); ++j) {
      ql(i, j) *= values[j];
    }
  }
  return matmul_nt(ql, q);
}

SymmetricEig run_tridiag(const Matrix& a, const EigenConfig& base = {}) {
  Workspace ws;
  SymmetricEig out;
  EigenConfig cfg = base;
  cfg.method = EigMethod::kTridiag;
  eigen_symmetric(MatrixView(a), ws, out, cfg);
  return out;
}

double spectral_scale(const SymmetricEig& eig) {
  double s = 1e-300;
  for (const double v : eig.values) s = std::max(s, std::abs(v));
  return s;
}

/// Eigen-pair residual max_j ‖A·vⱼ − λⱼ·vⱼ‖∞, the method-agnostic
/// correctness check (eigenvectors of close eigenvalues are not unique,
/// so columns cannot be compared directly across solvers).
double max_residual(const Matrix& a, const SymmetricEig& eig) {
  const Matrix av = matmul(a, eig.vectors);
  double worst = 0.0;
  for (std::size_t j = 0; j < eig.vectors.cols(); ++j) {
    for (std::size_t i = 0; i < a.rows(); ++i) {
      worst = std::max(
          worst, std::abs(av(i, j) - eig.values[j] * eig.vectors(i, j)));
    }
  }
  return worst;
}

void expect_matches_jacobi(const Matrix& a, double tol = 1e-10) {
  const SymmetricEig tri = run_tridiag(a);
  const SymmetricEig jac = jacobi_eigen_symmetric(a);
  ASSERT_EQ(tri.values.size(), jac.values.size());
  const double scale = spectral_scale(jac);
  for (std::size_t i = 0; i < tri.values.size(); ++i) {
    EXPECT_NEAR(tri.values[i], jac.values[i], tol * scale) << "i=" << i;
  }
  EXPECT_LT(orthonormality_defect(tri.vectors), 1e-9);
  EXPECT_LT(max_residual(a, tri), 1e-9 * std::max(1.0, scale));
}

TEST(EigenTridiag, OneByOne) {
  const Matrix a{{-4.5}};
  const SymmetricEig eig = run_tridiag(a);
  EXPECT_DOUBLE_EQ(eig.values[0], -4.5);
  ASSERT_EQ(eig.vectors.rows(), 1u);
  EXPECT_DOUBLE_EQ(eig.vectors(0, 0), 1.0);
}

TEST(EigenTridiag, Known2x2) {
  const Matrix a{{2.0, 1.0}, {1.0, 2.0}};
  const SymmetricEig eig = run_tridiag(a);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-12);
  EXPECT_LT(max_residual(a, eig), 1e-12);
}

TEST(EigenTridiag, DiagonalAlreadyReduced) {
  const Matrix a{{3.0, 0.0, 0.0}, {0.0, -1.0, 0.0}, {0.0, 0.0, 7.0}};
  const SymmetricEig eig = run_tridiag(a);
  EXPECT_NEAR(eig.values[0], 7.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 3.0, 1e-12);
  EXPECT_NEAR(eig.values[2], -1.0, 1e-12);
  EXPECT_LT(max_residual(a, eig), 1e-12);
}

TEST(EigenTridiag, NonSquareThrows) {
  Workspace ws;
  SymmetricEig out;
  Matrix a(2, 3);
  EXPECT_THROW(tridiag_eigen_symmetric(MatrixView(a), ws, out, {}),
               CheckError);
}

TEST(EigenTridiag, EmptyThrows) {
  Workspace ws;
  SymmetricEig out;
  Matrix a;
  EXPECT_THROW(tridiag_eigen_symmetric(MatrixView(a), ws, out, {}),
               CheckError);
}

class TridiagSizes : public ::testing::TestWithParam<int> {};

TEST_P(TridiagSizes, MatchesJacobiOnRandomSymmetric) {
  const auto n = static_cast<std::size_t>(GetParam());
  Rng rng(static_cast<std::uint64_t>(n) * 101);
  expect_matches_jacobi(random_symmetric(n, rng));
}

TEST_P(TridiagSizes, MatchesJacobiOnRandomSpd) {
  const auto n = static_cast<std::size_t>(GetParam());
  Rng rng(static_cast<std::uint64_t>(n) * 103);
  Matrix b(n, n + 5);
  for (std::size_t i = 0; i < n; ++i) rng.fill_normal(b.row(i));
  expect_matches_jacobi(gram_rows(b));
}

INSTANTIATE_TEST_SUITE_P(Sizes, TridiagSizes,
                         ::testing::Values(2, 3, 5, 16, 33, 60, 90));

TEST(EigenTridiag, RankDeficientGram) {
  // 40×40 Gram of a 15-row matrix: 25 exact zero eigenvalues.
  Rng rng(7);
  Matrix b(15, 40);
  for (std::size_t i = 0; i < 15; ++i) rng.fill_normal(b.row(i));
  const Matrix a = matmul_tn(b, b);  // BᵀB, 40×40, rank 15
  const SymmetricEig eig = run_tridiag(a);
  const double scale = spectral_scale(eig);
  for (std::size_t i = 15; i < 40; ++i) {
    EXPECT_LT(std::abs(eig.values[i]), 1e-10 * scale) << "i=" << i;
  }
  expect_matches_jacobi(a);
}

TEST(EigenTridiag, ClusteredAndRepeatedEigenvalues) {
  Rng rng(11);
  const std::size_t n = 24;
  const Matrix q = random_orthogonal(n, rng);
  std::vector<double> vals(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Three exact repeats, then a tight cluster, then a spread tail.
    if (i < 3) vals[i] = 5.0;
    else if (i < 8) vals[i] = 2.0 + 1e-13 * static_cast<double>(i);
    else vals[i] = 1.0 / static_cast<double>(i);
  }
  const Matrix a = with_spectrum(q, vals);
  const SymmetricEig eig = run_tridiag(a);
  std::sort(vals.rbegin(), vals.rend());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(eig.values[i], vals[i], 1e-10 * 5.0) << "i=" << i;
  }
  EXPECT_LT(orthonormality_defect(eig.vectors), 1e-9);
  EXPECT_LT(max_residual(a, eig), 1e-9 * 5.0);
}

TEST(EigenTridiag, GradedSpectrumConditionTenToTwelve) {
  Rng rng(13);
  const std::size_t n = 30;
  const Matrix q = random_orthogonal(n, rng);
  std::vector<double> vals(n);
  for (std::size_t i = 0; i < n; ++i) {
    vals[i] = std::pow(10.0, -12.0 * static_cast<double>(i) /
                                 static_cast<double>(n - 1));
  }
  const Matrix a = with_spectrum(q, vals);
  const SymmetricEig eig = run_tridiag(a);
  // Norm-wise accuracy: every eigenvalue within 1e-10 of the spectral
  // scale (componentwise accuracy at κ=1e12 is beyond any dense solver
  // working from the full matrix).
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(eig.values[i], vals[i], 1e-10) << "i=" << i;
  }
  EXPECT_GE(eig.values[n - 1], -1e-12);
  EXPECT_LT(max_residual(a, eig), 1e-10);
  expect_matches_jacobi(a);
}

TEST(EigenTridiag, ValuesOnlyMatchesFullSolve) {
  Rng rng(17);
  const Matrix a = random_symmetric(41, rng);
  const SymmetricEig full = run_tridiag(a);
  EigenConfig cfg;
  cfg.vectors = false;
  const SymmetricEig vals = run_tridiag(a, cfg);
  ASSERT_EQ(vals.values.size(), full.values.size());
  EXPECT_EQ(vals.vectors.rows(), 0u);
  // The d/e recurrence is identical with or without rotation
  // accumulation, so the eigenvalues agree to the last bit.
  for (std::size_t i = 0; i < full.values.size(); ++i) {
    EXPECT_DOUBLE_EQ(vals.values[i], full.values[i]) << "i=" << i;
  }
}

TEST(EigenTridiag, MaxVectorsKeepsLeadingPrefix) {
  Rng rng(19);
  const Matrix a = random_symmetric(37, rng);
  const SymmetricEig full = run_tridiag(a);
  EigenConfig cfg;
  cfg.max_vectors = 9;
  const SymmetricEig capped = run_tridiag(a, cfg);
  ASSERT_EQ(capped.vectors.cols(), 9u);
  ASSERT_EQ(capped.values.size(), full.values.size());  // values never capped
  for (std::size_t j = 0; j < 9; ++j) {
    for (std::size_t i = 0; i < 37; ++i) {
      // Same deterministic computation → identical columns, not just
      // sign-equivalent ones.
      EXPECT_DOUBLE_EQ(capped.vectors(i, j), full.vectors(i, j));
    }
  }
}

TEST(EigenTridiag, DispatchHonorsExplicitMethodAndCapsJacobi) {
  Rng rng(23);
  const Matrix a = random_symmetric(20, rng);
  EigenConfig cfg;
  cfg.method = EigMethod::kJacobi;
  cfg.max_vectors = 4;
  Workspace ws;
  SymmetricEig jac;
  eigen_symmetric(MatrixView(a), ws, jac, cfg);
  ASSERT_EQ(jac.vectors.cols(), 4u);
  cfg.method = EigMethod::kTridiag;
  SymmetricEig tri;
  eigen_symmetric(MatrixView(a), ws, tri, cfg);
  ASSERT_EQ(tri.vectors.cols(), 4u);
  const double scale = spectral_scale(jac);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_NEAR(tri.values[i], jac.values[i], 1e-10 * scale);
  }
  // Column j of either result spans the same eigendirection: the projector
  // v·vᵀ is sign-free, so compare |⟨v_jac, v_tri⟩| ≈ 1.
  for (std::size_t j = 0; j < 4; ++j) {
    double ip = 0.0;
    for (std::size_t i = 0; i < 20; ++i) {
      ip += jac.vectors(i, j) * tri.vectors(i, j);
    }
    EXPECT_NEAR(std::abs(ip), 1.0, 1e-8) << "j=" << j;
  }
}

TEST(EigenTridiag, RepeatedCallsReuseWorkspace) {
  Rng rng(29);
  Workspace ws;
  SymmetricEig out;
  const Matrix a = random_symmetric(32, rng);
  eigen_symmetric(MatrixView(a), ws, out, {});
  const std::size_t bytes_after_first = ws.capacity_bytes();
  for (int rep = 0; rep < 3; ++rep) {
    eigen_symmetric(MatrixView(a), ws, out, {});
  }
  EXPECT_EQ(ws.capacity_bytes(), bytes_after_first);
  EXPECT_LT(max_residual(a, out), 1e-9 * spectral_scale(out));
}

/// FD-level invariance: the same stream sketched under either eigensolver
/// must report the same covariance error to well below the FD bound —
/// the solver is an implementation detail, not a model change.
TEST(EigenTridiag, FdSketchErrorIsMethodIndependent) {
  const auto sketch_with = [](const char* method, const Matrix& rows) {
    ::setenv("ARAMS_EIG_METHOD", method, /*overwrite=*/1);
    core::FdConfig config;
    config.sketch_rows = 16;
    core::FrequentDirections fd(config);
    fd.append_batch(rows);
    fd.compress();
    Matrix out = fd.sketch();
    ::unsetenv("ARAMS_EIG_METHOD");
    return out;
  };

  Rng rng(31);
  Matrix rows(200, 48);
  for (std::size_t i = 0; i < rows.rows(); ++i) rng.fill_normal(rows.row(i));

  const Matrix sk_jacobi = sketch_with("jacobi", rows);
  const Matrix sk_tridiag = sketch_with("tridiag", rows);

  Rng probe_a(77);
  const double err_jacobi =
      covariance_error_relative(rows, sk_jacobi, probe_a, 60);
  Rng probe_b(77);
  const double err_tridiag =
      covariance_error_relative(rows, sk_tridiag, probe_b, 60);
  EXPECT_NEAR(err_jacobi, err_tridiag, 1e-10);
}

}  // namespace
}  // namespace arams::linalg
