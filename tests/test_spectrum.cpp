// Tests for singular-value spectrum builders.

#include <gtest/gtest.h>

#include <cmath>

#include "data/spectrum.hpp"
#include "util/check.hpp"

namespace arams::data {
namespace {

TEST(Spectrum, ExponentialDecays) {
  SpectrumConfig config;
  config.kind = DecayKind::kExponential;
  config.count = 50;
  config.rate = 0.1;
  const auto s = make_spectrum(config);
  ASSERT_EQ(s.size(), 50u);
  EXPECT_DOUBLE_EQ(s[0], 1.0);
  for (std::size_t i = 1; i < s.size(); ++i) {
    EXPECT_LT(s[i], s[i - 1]);
    EXPECT_GT(s[i], 0.0);
  }
  EXPECT_NEAR(s[10], std::exp(-1.0), 1e-12);
}

TEST(Spectrum, OrderingOfDecayFamilies) {
  // At the same rate and index, super-exponential < exponential <
  // sub-exponential (for indices past the crossover) — the Fig. 1 panel
  // ordering.
  SpectrumConfig config;
  config.count = 200;
  config.rate = 0.05;
  config.kind = DecayKind::kSubExponential;
  const auto sub = make_spectrum(config);
  config.kind = DecayKind::kExponential;
  const auto exp_s = make_spectrum(config);
  config.kind = DecayKind::kSuperExponential;
  const auto super = make_spectrum(config);
  // Tail comparison at index 150.
  EXPECT_LT(super[150], exp_s[150]);
  EXPECT_GT(sub[150] / sub[0], 0.0);
  // Sub-exponential keeps more relative tail mass than exponential.
  EXPECT_GT(sub[199] / sub[20], exp_s[199] / exp_s[20]);
}

TEST(Spectrum, CubicMatchesFormula) {
  SpectrumConfig config;
  config.kind = DecayKind::kCubic;
  config.count = 10;
  const auto s = make_spectrum(config);
  EXPECT_DOUBLE_EQ(s[0], 1.0);
  EXPECT_DOUBLE_EQ(s[1], 1.0 / 8.0);
  EXPECT_DOUBLE_EQ(s[9], 1.0 / 1000.0);
}

TEST(Spectrum, StepSpectrum) {
  SpectrumConfig config;
  config.kind = DecayKind::kStep;
  config.count = 20;
  config.step_rank = 5;
  config.step_floor = 1e-6;
  const auto s = make_spectrum(config);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(s[i], 1.0);
  for (std::size_t i = 5; i < 20; ++i) EXPECT_DOUBLE_EQ(s[i], 1e-6);
}

TEST(Spectrum, ScaleMultiplies) {
  SpectrumConfig config;
  config.kind = DecayKind::kExponential;
  config.count = 3;
  config.scale = 7.0;
  const auto s = make_spectrum(config);
  EXPECT_DOUBLE_EQ(s[0], 7.0);
}

TEST(Spectrum, EmptyCountThrows) {
  SpectrumConfig config;
  config.count = 0;
  EXPECT_THROW(make_spectrum(config), CheckError);
}

TEST(Spectrum, NamesRoundTrip) {
  for (const DecayKind kind :
       {DecayKind::kSubExponential, DecayKind::kExponential,
        DecayKind::kSuperExponential, DecayKind::kCubic, DecayKind::kStep}) {
    EXPECT_EQ(parse_decay(decay_name(kind)), kind);
  }
  EXPECT_THROW(parse_decay("nonsense"), CheckError);
}

}  // namespace
}  // namespace arams::data
