// Figure-shape regression tests: miniature versions of each EXPERIMENTS.md
// claim, so the reproduction itself is guarded by ctest. Each test asserts
// the paper's *qualitative* shape at a size that runs in well under a
// second.

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/kmeans.hpp"
#include "cluster/metrics.hpp"
#include "core/arams_sketch.hpp"
#include "embed/pca.hpp"
#include "embed/umap.hpp"
#include "image/preprocess.hpp"
#include "data/beam_profile.hpp"
#include "data/synthetic.hpp"
#include "embed/metrics.hpp"
#include "linalg/blas.hpp"
#include "linalg/norms.hpp"
#include "parallel/virtual_cores.hpp"
#include "stream/pipeline.hpp"
#include "stream/source.hpp"
#include "util/stopwatch.hpp"

namespace arams {
namespace {

using linalg::Matrix;

Matrix fig1_dataset(std::uint64_t seed) {
  data::SyntheticConfig config;
  config.n = 900;
  config.d = 120;
  config.spectrum.kind = data::DecayKind::kExponential;
  config.spectrum.count = 60;
  config.spectrum.rate = 0.08;
  Rng rng(seed);
  return data::make_low_rank(config, rng);
}

TEST(Fig1Shape, PrioritySamplingReducesWorkAtMatchedError) {
  const Matrix a = fig1_dataset(1);
  core::AramsConfig with;
  with.use_sampling = true;
  with.beta = 0.8;
  with.rank_adaptive = false;
  with.ell = 30;
  core::AramsConfig without = with;
  without.use_sampling = false;

  core::Arams s1(with), s2(without);
  const auto r1 = s1.sketch_matrix(a);
  const auto r2 = s2.sketch_matrix(a);
  // PS processes ~20% fewer rows → fewer rotations.
  EXPECT_LT(r1.report.counter("rows_processed"),
            r2.report.counter("rows_processed"));
  EXPECT_LE(r1.report.counter("svd_count"), r2.report.counter("svd_count"));
  // …at comparable reconstruction error.
  Rng p1(2), p2(2);
  // Both errors sit near the noise floor of this small instance; PS must
  // stay the same order of magnitude.
  const double e1 = linalg::covariance_error_relative(a, r1.sketch, p1, 60);
  const double e2 = linalg::covariance_error_relative(a, r2.sketch, p2, 60);
  EXPECT_LT(e1, 5.0 * e2 + 5e-3);
}

TEST(Fig1Shape, RankAdaptiveMeetsItsErrorContract) {
  const Matrix a = fig1_dataset(3);
  for (const double epsilon : {0.1, 0.05, 0.02}) {
    core::AramsConfig config;
    config.use_sampling = false;
    config.rank_adaptive = true;
    config.ell = 8;
    config.epsilon = epsilon;
    core::Arams sketcher(config);
    core::Arams& s = sketcher;
    s.sketch_matrix(a);
    const Matrix basis = s.basis(s.current_ell());
    const double achieved =
        linalg::projection_residual_exact(a, basis) /
        linalg::frobenius_norm_squared(a);
    // The heuristic targets the *batch* residual; the full-stream residual
    // lands within a small factor of the requested ε.
    EXPECT_LT(achieved, 3.0 * epsilon);
  }
}

TEST(Fig2Shape, TreeMakespanBeatsSerialAtScale) {
  data::SyntheticConfig dc;
  dc.n = 2048;
  dc.d = 128;
  dc.spectrum.kind = data::DecayKind::kCubic;
  dc.spectrum.count = 64;
  Rng rng(4);
  const Matrix a = data::make_low_rank(dc, rng);

  const auto run = [&](parallel::MergeStrategy strategy) {
    parallel::ScalingConfig config;
    config.num_cores = 16;
    config.ell = 16;
    config.strategy = strategy;
    return parallel::run_sharded_sketch(config, [&](std::size_t core) {
      return a.slice_rows(core * a.rows() / 16,
                          (core + 1) * a.rows() / 16);
    });
  };
  const auto tree = run(parallel::MergeStrategy::kTree);
  const auto serial = run(parallel::MergeStrategy::kSerial);
  EXPECT_LT(tree.critical_path_svds, serial.critical_path_svds);
  EXPECT_LT(tree.merge_stats.critical_path_seconds,
            serial.merge_stats.critical_path_seconds);
}

TEST(Fig3Shape, TreeErrorTracksSerialError) {
  data::SyntheticConfig dc;
  dc.n = 1024;
  dc.d = 96;
  dc.spectrum.kind = data::DecayKind::kCubic;
  dc.spectrum.count = 48;
  dc.noise = 3e-3;
  Rng rng(5);
  const Matrix a = data::make_low_rank(dc, rng);

  const auto run = [&](parallel::MergeStrategy strategy) {
    parallel::ScalingConfig config;
    config.num_cores = 16;
    config.ell = 16;
    config.strategy = strategy;
    const auto r = parallel::run_sharded_sketch(config, [&](std::size_t c) {
      return a.slice_rows(c * a.rows() / 16, (c + 1) * a.rows() / 16);
    });
    Rng power(6);
    return linalg::covariance_error_relative(a, r.sketch, power, 40);
  };
  const double tree = run(parallel::MergeStrategy::kTree);
  const double serial = run(parallel::MergeStrategy::kSerial);
  EXPECT_LT(tree, 1.5 * serial + 1e-9);
  EXPECT_LT(serial, 1.5 * tree + 1e-9);
}

TEST(Fig5Shape, PointingModeRecoversCenterOfMass) {
  data::BeamProfileConfig beam;
  beam.height = 24;
  beam.width = 24;
  beam.exotic_prob = 0.0;
  Rng rng(7);
  const auto samples = data::generate_beam_profiles(beam, 220, rng);
  std::vector<image::ImageF> images;
  std::vector<double> com_x;
  for (const auto& s : samples) {
    images.push_back(s.frame);
    com_x.push_back(s.truth.com_x);
  }
  stream::PipelineConfig config;
  config.sketch.ell = 16;
  config.num_cores = 2;
  config.pca_components = 8;
  config.umap.n_neighbors = 12;
  config.umap.n_epochs = 120;
  config.preprocess.center = false;
  const auto result =
      stream::MonitoringPipeline(config).analyze(images);
  double best = 0.0;
  for (std::size_t axis = 0; axis < 2; ++axis) {
    best = std::max(best, std::abs(embed::axis_factor_correlation(
                              result.embedding, axis, com_x)));
  }
  EXPECT_GT(best, 0.5);
}

TEST(Fig6Shape, DiffractionClassesSeparateUnsupervised) {
  data::DiffractionConfig diff;
  diff.height = 28;
  diff.width = 28;
  diff.num_classes = 3;
  diff.photons_per_frame = 4e4;
  stream::DiffractionSource source(diff, 150, 120.0, 8);
  const auto events = stream::drain(source, 150);
  std::vector<int> truth;
  for (const auto& e : events) truth.push_back(e.truth_label);

  stream::PipelineConfig config;
  config.sketch.ell = 16;
  config.num_cores = 2;
  config.pca_components = 8;
  config.umap.n_neighbors = 12;
  config.umap.n_epochs = 120;
  config.preprocess.center = false;
  config.cluster_method = stream::PipelineConfig::ClusterMethod::kHdbscan;
  const auto result =
      stream::MonitoringPipeline(config).analyze_events(events);
  EXPECT_GT(cluster::adjusted_rand_index(result.labels, truth), 0.4);
}

TEST(RuntimeShape, PipelineOutrunsTheDetectorRate) {
  // The streaming stages must beat 120 Hz per core by a wide margin even
  // at this scaled frame size.
  data::BeamProfileConfig beam;
  beam.height = 32;
  beam.width = 32;
  stream::BeamProfileSource source(beam, 200, 120.0, 9);
  const auto events = stream::drain(source, 200);
  std::vector<image::ImageF> images;
  for (const auto& e : events) images.push_back(e.frame);

  stream::PipelineConfig config;
  config.sketch.ell = 16;
  config.num_cores = 1;
  config.pca_components = 8;
  config.umap.n_neighbors = 10;
  config.umap.n_epochs = 80;
  const auto result =
      stream::MonitoringPipeline(config).analyze(images);
  const double streaming_seconds = result.preprocess_seconds() +
                                   result.sketch_seconds() +
                                   result.project_seconds();
  EXPECT_GT(200.0 / streaming_seconds, 120.0);
}

TEST(TwoStageShape, NonlinearStageBeatsPcaOnly) {
  // Four classes overflow what two linear coordinates can separate; the
  // nonlinear stage recovers them (the Section VI "both stages" claim).
  data::DiffractionConfig diff;
  diff.height = 28;
  diff.width = 28;
  diff.num_classes = 4;
  diff.photons_per_frame = 2e4;
  stream::DiffractionSource source(diff, 180, 120.0, 10);
  const auto events = stream::drain(source, 180);
  std::vector<int> truth;
  std::vector<image::ImageF> images;
  for (const auto& e : events) {
    truth.push_back(e.truth_label);
    images.push_back(e.frame);
  }
  image::PreprocessConfig pre;
  pre.center = false;
  const Matrix raw =
      image::images_to_matrix(image::preprocess_batch(images, pre));

  core::AramsConfig sk;
  sk.ell = 16;
  core::Arams sketcher(sk);
  const auto sketch = sketcher.sketch_matrix(raw);

  const embed::PcaProjector pca2(sketch.sketch, 2);
  const embed::PcaProjector pca8(sketch.sketch, 8);
  const Matrix pca_only = pca2.project(raw);
  embed::UmapConfig umap;
  umap.n_neighbors = 12;
  umap.n_epochs = 120;
  const Matrix two_stage = embed::umap_embed(pca8.project(raw), umap);

  cluster::KmeansConfig km;
  km.k = 4;
  km.restarts = 6;
  const double ari_pca = cluster::adjusted_rand_index(
      cluster::kmeans(pca_only, km).labels, truth);
  const double ari_umap = cluster::adjusted_rand_index(
      cluster::kmeans(two_stage, km).labels, truth);
  EXPECT_GE(ari_umap, ari_pca);
  EXPECT_GT(ari_umap, 0.7);
}

}  // namespace
}  // namespace arams
