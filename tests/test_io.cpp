// io module: npy round-trip + format details, frame bundles.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "io/frames.hpp"
#include "io/npy.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace arams::io {
namespace {

using linalg::Matrix;

TEST(Npy, RoundTripPreservesValues) {
  Matrix m(7, 5);
  Rng rng(1);
  for (std::size_t i = 0; i < 7; ++i) rng.fill_normal(m.row(i));
  const std::string path = "/tmp/arams_test.npy";
  save_npy(path, m);
  const Matrix back = load_npy(path);
  EXPECT_EQ(back.rows(), 7u);
  EXPECT_EQ(back.cols(), 5u);
  EXPECT_EQ(Matrix::max_abs_diff(back, m), 0.0);
  std::remove(path.c_str());
}

TEST(Npy, HeaderIsNumpyV1WithPaddedLength) {
  const std::string path = "/tmp/arams_header.npy";
  save_npy(path, Matrix(2, 3));
  std::ifstream f(path, std::ios::binary);
  char magic[6];
  f.read(magic, 6);
  EXPECT_EQ(std::string(magic, 6), "\x93NUMPY");
  char version[2];
  f.read(version, 2);
  EXPECT_EQ(version[0], 1);
  unsigned char len[2];
  f.read(reinterpret_cast<char*>(len), 2);
  const std::size_t hlen = len[0] | (len[1] << 8);
  // 10-byte preamble + header must be 64-aligned per the npy spec.
  EXPECT_EQ((10 + hlen) % 64, 0u);
  std::string header(hlen, '\0');
  f.read(header.data(), static_cast<std::streamsize>(hlen));
  EXPECT_NE(header.find("'descr': '<f8'"), std::string::npos);
  EXPECT_NE(header.find("'fortran_order': False"), std::string::npos);
  EXPECT_NE(header.find("(2, 3)"), std::string::npos);
  EXPECT_EQ(header.back(), '\n');
  std::remove(path.c_str());
}

TEST(Npy, Loads1dAsRowVector) {
  // Hand-write a 1-D npy of 4 doubles.
  const std::string path = "/tmp/arams_1d.npy";
  {
    std::ofstream f(path, std::ios::binary);
    std::string header =
        "{'descr': '<f8', 'fortran_order': False, 'shape': (4,), }";
    const std::size_t total = ((10 + header.size() + 1 + 63) / 64) * 64;
    header.resize(total - 10 - 1, ' ');
    header += '\n';
    f << "\x93NUMPY";
    f.put('\x01');
    f.put('\x00');
    f.put(static_cast<char>(header.size() & 0xff));
    f.put(static_cast<char>(header.size() >> 8));
    f << header;
    const double vals[4] = {1.0, 2.5, -3.0, 4.25};
    f.write(reinterpret_cast<const char*>(vals), sizeof(vals));
  }
  const Matrix m = load_npy(path);
  EXPECT_EQ(m.rows(), 1u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m(0, 1), 2.5);
  EXPECT_EQ(m(0, 2), -3.0);
  std::remove(path.c_str());
}

TEST(Npy, RejectsGarbage) {
  const std::string path = "/tmp/arams_garbage.npy";
  {
    std::ofstream f(path, std::ios::binary);
    f << "not an npy file at all";
  }
  EXPECT_THROW(load_npy(path), CheckError);
  std::remove(path.c_str());
}

TEST(Npy, RejectsWrongDtype) {
  // '<f4' is a first-class dtype now (the fp32 ingest lane); an integer
  // dtype still has to be refused by both loaders.
  const std::string path = "/tmp/arams_i8.npy";
  {
    std::ofstream f(path, std::ios::binary);
    std::string header =
        "{'descr': '<i8', 'fortran_order': False, 'shape': (2, 2), }";
    header += '\n';
    f << "\x93NUMPY";
    f.put('\x01');
    f.put('\x00');
    f.put(static_cast<char>(header.size() & 0xff));
    f.put(static_cast<char>(header.size() >> 8));
    f << header << std::string(32, '\0');
  }
  EXPECT_THROW(load_npy(path), CheckError);
  EXPECT_THROW(load_npy_f32(path), CheckError);
  std::remove(path.c_str());
}

TEST(Npy, Float32RoundTripPreservesValues) {
  // The fp32 mirror of RoundTripPreservesValues: '<f4' on disk, no fp64
  // round trip, bit-exact payload back.
  linalg::MatrixF m(7, 5);
  Rng rng(7);
  for (std::size_t i = 0; i < 7; ++i) {
    for (float& v : m.row(i)) v = static_cast<float>(rng.normal());
  }
  const std::string path = "/tmp/arams_test_f32.npy";
  save_npy_f32(path, m);
  const linalg::MatrixF back = load_npy_f32(path);
  EXPECT_EQ(back.rows(), 7u);
  EXPECT_EQ(back.cols(), 5u);
  EXPECT_EQ(linalg::MatrixF::max_abs_diff(back, m), 0.0f);

  std::ifstream f(path, std::ios::binary);
  std::string preamble(10, '\0');
  f.read(preamble.data(), 10);
  std::string header(256, '\0');
  f.read(header.data(), 256);
  EXPECT_NE(header.find("'descr': '<f4'"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Npy, Float32PayloadWidensThroughF64Loader) {
  linalg::MatrixF m(3, 4);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = 0.25f * static_cast<float>(i) - 1.5f;
  }
  const std::string path = "/tmp/arams_widen_f4.npy";
  save_npy_f32(path, m);
  const Matrix wide = load_npy(path);
  EXPECT_EQ(wide.rows(), 3u);
  EXPECT_EQ(wide.cols(), 4u);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(wide.data()[i], static_cast<double>(m.data()[i]));
  }
  std::remove(path.c_str());
}

TEST(Npy, Float64PayloadNarrowsThroughF32Loader) {
  Matrix m(2, 3);
  Rng rng(11);
  for (std::size_t i = 0; i < 2; ++i) rng.fill_normal(m.row(i));
  const std::string path = "/tmp/arams_narrow_f8.npy";
  save_npy(path, m);
  const linalg::MatrixF narrow = load_npy_f32(path);
  EXPECT_EQ(narrow.rows(), 2u);
  EXPECT_EQ(narrow.cols(), 3u);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(narrow.data()[i], static_cast<float>(m.data()[i]));
  }
  std::remove(path.c_str());
}

TEST(Npy, RejectsTruncatedPayload) {
  const std::string path = "/tmp/arams_trunc.npy";
  save_npy(path, Matrix(4, 4));
  // Chop the file.
  {
    std::ifstream in(path, std::ios::binary);
    std::string all((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary);
    out.write(all.data(), static_cast<std::streamsize>(all.size() - 40));
  }
  EXPECT_THROW(load_npy(path), CheckError);
  std::remove(path.c_str());
}

TEST(Npy, EmptyMatrixRefused) {
  EXPECT_THROW(save_npy("/tmp/x.npy", Matrix()), CheckError);
}

TEST(Frames, RoundTrip) {
  std::vector<image::ImageF> frames;
  Rng rng(2);
  for (int i = 0; i < 5; ++i) {
    image::ImageF img(6, 4);
    rng.fill_normal(img.pixels());
    frames.push_back(std::move(img));
  }
  const std::string path = "/tmp/arams_test.frames";
  save_frames(path, frames);
  const auto back = load_frames(path);
  ASSERT_EQ(back.size(), 5u);
  EXPECT_EQ(back[0].height(), 6u);
  EXPECT_EQ(back[0].width(), 4u);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t p = 0; p < 24; ++p) {
      ASSERT_EQ(back[i].pixels()[p], frames[i].pixels()[p]);
    }
  }
  std::remove(path.c_str());
}

TEST(Frames, RejectsInconsistentShapes) {
  std::vector<image::ImageF> frames;
  frames.emplace_back(2, 2);
  frames.emplace_back(3, 3);
  EXPECT_THROW(save_frames("/tmp/x.frames", frames), CheckError);
}

TEST(Frames, RejectsEmptyBundle) {
  EXPECT_THROW(save_frames("/tmp/x.frames", {}), CheckError);
}

TEST(Frames, RejectsWrongMagic) {
  const std::string path = "/tmp/arams_bad.frames";
  {
    std::ofstream f(path, std::ios::binary);
    f << "WRONGMAGIC and then some bytes";
  }
  EXPECT_THROW(load_frames(path), CheckError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace arams::io
