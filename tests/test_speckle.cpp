// XPCS speckle generator: contrast statistics, coherence-length effect,
// frame-to-frame correlation, argument validation.

#include <gtest/gtest.h>

#include <cmath>

#include "data/speckle.hpp"
#include "util/check.hpp"

namespace arams::data {
namespace {

double frame_correlation(const image::ImageF& a, const image::ImageF& b) {
  const auto pa = a.pixels();
  const auto pb = b.pixels();
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ma += pa[i];
    mb += pb[i];
  }
  ma /= static_cast<double>(pa.size());
  mb /= static_cast<double>(pb.size());
  double sab = 0.0, saa = 0.0, sbb = 0.0;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    sab += (pa[i] - ma) * (pb[i] - mb);
    saa += (pa[i] - ma) * (pa[i] - ma);
    sbb += (pb[i] - mb) * (pb[i] - mb);
  }
  return sab / std::sqrt(saa * sbb);
}

TEST(Speckle, ValidatesConfig) {
  SpeckleConfig config;
  config.height = 2;
  EXPECT_THROW(SpeckleGenerator(config, 1), CheckError);
  config = SpeckleConfig{};
  config.contrast = 0.0;
  EXPECT_THROW(SpeckleGenerator(config, 1), CheckError);
  config = SpeckleConfig{};
  config.correlation = 1.0;
  EXPECT_THROW(SpeckleGenerator(config, 1), CheckError);
}

TEST(Speckle, MeanIntensityHonored) {
  SpeckleConfig config;
  config.mean_intensity = 7.5;
  SpeckleGenerator gen(config, 2);
  const SpeckleSample s = gen.next();
  const double mean = s.frame.total_intensity() /
                      static_cast<double>(s.frame.pixel_count());
  EXPECT_NEAR(mean, 7.5, 1e-9);
}

TEST(Speckle, FullyDevelopedContrastNearOne) {
  // Fully developed speckle has σ_I/⟨I⟩ ≈ 1 (negative-exponential
  // intensity statistics); finite grain count gives a few % spread.
  SpeckleConfig config;
  config.height = 96;
  config.width = 96;
  config.coherence_length = 1.5;
  config.contrast = 1.0;
  SpeckleGenerator gen(config, 3);
  double mean_contrast = 0.0;
  constexpr int kFrames = 10;
  for (int i = 0; i < kFrames; ++i) {
    mean_contrast += gen.next().truth.realized_contrast / kFrames;
  }
  EXPECT_NEAR(mean_contrast, 1.0, 0.2);
}

TEST(Speckle, PartialCoherenceReducesContrast) {
  SpeckleConfig full;
  full.contrast = 1.0;
  SpeckleConfig half = full;
  half.contrast = 0.5;
  SpeckleGenerator g1(full, 4), g2(half, 4);
  const double c1 = g1.next().truth.realized_contrast;
  const double c2 = g2.next().truth.realized_contrast;
  EXPECT_NEAR(c2, 0.5 * c1, 0.05 * c1);
}

TEST(Speckle, CoarserCoherenceMakesBiggerGrains) {
  // Larger coherence length → fewer independent grains → higher spatial
  // autocorrelation at a 2-pixel lag.
  const auto lag2_corr = [](const image::ImageF& f) {
    double ma = 0.0;
    for (const double p : f.pixels()) ma += p;
    ma /= static_cast<double>(f.pixel_count());
    double sab = 0.0, saa = 0.0;
    for (std::size_t y = 0; y < f.height(); ++y) {
      for (std::size_t x = 0; x + 2 < f.width(); ++x) {
        sab += (f.at(y, x) - ma) * (f.at(y, x + 2) - ma);
        saa += (f.at(y, x) - ma) * (f.at(y, x) - ma);
      }
    }
    return sab / saa;
  };
  SpeckleConfig fine;
  fine.coherence_length = 1.0;
  fine.height = 80;
  fine.width = 80;
  SpeckleConfig coarse = fine;
  coarse.coherence_length = 4.0;
  SpeckleGenerator g1(fine, 5), g2(coarse, 5);
  EXPECT_LT(lag2_corr(g1.next().frame), lag2_corr(g2.next().frame));
}

TEST(Speckle, ConsecutiveFramesCorrelated) {
  SpeckleConfig config;
  config.correlation = 0.95;
  SpeckleGenerator gen(config, 6);
  const SpeckleSample a = gen.next();
  const SpeckleSample b = gen.next();
  EXPECT_GT(frame_correlation(a.frame, b.frame), 0.6);
}

TEST(Speckle, ZeroCorrelationGivesIndependentFrames) {
  // A single pair fluctuates by ~1/√grains; average several pairs.
  SpeckleConfig config;
  config.correlation = 0.0;
  config.height = 64;
  config.width = 64;
  SpeckleGenerator gen(config, 7);
  double mean_corr = 0.0;
  constexpr int kPairs = 6;
  SpeckleSample prev = gen.next();
  for (int i = 0; i < kPairs; ++i) {
    SpeckleSample cur = gen.next();
    mean_corr += frame_correlation(prev.frame, cur.frame) / kPairs;
    prev = std::move(cur);
  }
  EXPECT_LT(std::abs(mean_corr), 0.1);
}

TEST(Speckle, CorrelationDecaysOverFrames) {
  SpeckleConfig config;
  config.correlation = 0.8;
  SpeckleGenerator gen(config, 8);
  const SpeckleSample first = gen.next();
  SpeckleSample second = gen.next();
  const double near = frame_correlation(first.frame, second.frame);
  for (int i = 0; i < 20; ++i) {
    second = gen.next();
  }
  const double far = frame_correlation(first.frame, second.frame);
  EXPECT_LT(far, near);
}

TEST(Speckle, IntensityNonNegative) {
  SpeckleGenerator gen(SpeckleConfig{}, 9);
  const SpeckleSample s = gen.next();
  for (const double p : s.frame.pixels()) {
    EXPECT_GE(p, 0.0);
  }
}

TEST(SpeckleContrast, ConstantFrameIsZero) {
  image::ImageF img(8, 8);
  for (auto& p : img.pixels()) p = 5.0;
  EXPECT_NEAR(speckle_contrast(img), 0.0, 1e-12);
}

}  // namespace
}  // namespace arams::data
