// Stochastic trace estimators: Hutchinson and Hutch++ correctness,
// variance ordering, and the residual-estimator dispatch used by the
// rank-adaptation heuristic.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/norms.hpp"
#include "linalg/qr.hpp"
#include "linalg/trace_est.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace arams::linalg {
namespace {

/// Diagonal operator with the given entries.
SymMatVec diag_op(std::vector<double> d) {
  return [d = std::move(d)](std::span<const double> x,
                            std::span<double> y) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      y[i] = d[i] * x[i];
    }
  };
}

TEST(Hutchinson, ExactForIdentityLikeDiagonal) {
  // With Rademacher probes, zᵢ² = 1, so a diagonal operator's estimate is
  // exact on every draw.
  Rng rng(1);
  const auto op = diag_op({3.0, -1.0, 4.0, 1.5});
  EXPECT_NEAR(hutchinson_trace(op, 4, 1, rng), 7.5, 1e-12);
}

TEST(Hutchinson, UnbiasedOnDenseOperator) {
  Rng data_rng(2);
  Matrix a(8, 8);
  for (std::size_t i = 0; i < 8; ++i) data_rng.fill_normal(a.row(i));
  const Matrix g = gram_cols(a);  // PSD with known trace
  double trace = 0.0;
  for (std::size_t i = 0; i < 8; ++i) trace += g(i, i);
  const SymMatVec op = [&](std::span<const double> x, std::span<double> y) {
    gemv(g, x, y);
  };
  Rng rng(3);
  EXPECT_NEAR(hutchinson_trace(op, 8, 4000, rng), trace, 0.05 * trace);
}

TEST(Hutchinson, ValidatesArguments) {
  Rng rng(4);
  const auto op = diag_op({1.0});
  EXPECT_THROW(hutchinson_trace(op, 0, 5, rng), CheckError);
  EXPECT_THROW(hutchinson_trace(op, 1, 0, rng), CheckError);
}

TEST(HutchPlusPlus, NearExactForLowRankPsd) {
  // Rank-2 PSD operator: the deflation captures it exactly, so Hutch++
  // needs only a handful of probes.
  Rng data_rng(5);
  Matrix b(2, 20);
  for (std::size_t i = 0; i < 2; ++i) data_rng.fill_normal(b.row(i));
  const Matrix g = gram_cols(b);
  double trace = 0.0;
  for (std::size_t i = 0; i < 20; ++i) trace += g(i, i);
  const SymMatVec op = [&](std::span<const double> x, std::span<double> y) {
    gemv(g, x, y);
  };
  Rng rng(6);
  EXPECT_NEAR(hutchpp_trace(op, 20, 12, rng), trace, 1e-6 * trace);
}

TEST(HutchPlusPlus, BeatsHutchinsonOnDecayingSpectrum) {
  // Dense PSD operator with fast spectral decay — the regime Hutch++ is
  // built for. (Diagonal operators would be exact for Rademacher
  // Hutchinson, hence the random rotation.)
  constexpr std::size_t kDim = 48;
  Rng build_rng(99);
  Matrix root(kDim, kDim);
  for (std::size_t i = 0; i < kDim; ++i) {
    build_rng.fill_normal(root.row(i));
    // Scale row i so M = rootᵀ·root has an exponentially decaying
    // spectrum profile.
    linalg::scale(root.row(i), std::exp(-0.1 * static_cast<double>(i)));
  }
  const Matrix m_mat = gram_cols(root);
  double trace = 0.0;
  for (std::size_t i = 0; i < kDim; ++i) trace += m_mat(i, i);
  const SymMatVec op = [&](std::span<const double> x, std::span<double> y) {
    gemv(m_mat, x, y);
  };

  double err_h = 0.0, err_hpp = 0.0;
  constexpr int kReps = 40;
  constexpr int kProbes = 18;
  for (int rep = 0; rep < kReps; ++rep) {
    Rng r1(100 + rep), r2(100 + rep);
    err_h += std::abs(hutchinson_trace(op, kDim, kProbes, r1) - trace);
    err_hpp += std::abs(hutchpp_trace(op, kDim, kProbes, r2) - trace);
  }
  EXPECT_LT(err_hpp, err_h);
}

TEST(HutchPlusPlus, ValidatesProbeCount) {
  Rng rng(7);
  const auto op = diag_op({1.0, 2.0});
  EXPECT_THROW(hutchpp_trace(op, 2, 2, rng), CheckError);
}

class ResidualStrategies
    : public ::testing::TestWithParam<ResidualEstimator> {};

TEST_P(ResidualStrategies, ConvergesToExactResidual) {
  const ResidualEstimator strategy = GetParam();
  Rng data_rng(8);
  Matrix x(25, 15);
  for (std::size_t i = 0; i < 25; ++i) data_rng.fill_normal(x.row(i));
  Matrix b(15, 3);
  for (std::size_t i = 0; i < 15; ++i) data_rng.fill_normal(b.row(i));
  orthonormalize_columns(b);
  const Matrix basis = b.transposed();
  const double exact = projection_residual_exact(x, basis);

  double mean = 0.0;
  constexpr int kReps = 20;
  for (int rep = 0; rep < kReps; ++rep) {
    Rng rng(500 + rep);
    mean += estimate_residual(x, basis, strategy, 60, rng);
  }
  mean /= kReps;
  EXPECT_NEAR(mean, exact, 0.1 * exact);
}

TEST_P(ResidualStrategies, ZeroResidualDetected) {
  const ResidualEstimator strategy = GetParam();
  // Data exactly inside the basis span.
  Rng rng(9);
  Matrix b(10, 2);
  for (std::size_t i = 0; i < 10; ++i) rng.fill_normal(b.row(i));
  orthonormalize_columns(b);
  const Matrix basis = b.transposed();
  Matrix x(6, 10);
  for (std::size_t i = 0; i < 6; ++i) {
    const double c0 = rng.normal(), c1 = rng.normal();
    for (std::size_t j = 0; j < 10; ++j) {
      x(i, j) = c0 * basis(0, j) + c1 * basis(1, j);
    }
  }
  Rng est_rng(10);
  EXPECT_NEAR(estimate_residual(x, basis, strategy, 12, est_rng), 0.0,
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, ResidualStrategies,
    ::testing::Values(ResidualEstimator::kGaussianProbes,
                      ResidualEstimator::kHutchinson,
                      ResidualEstimator::kHutchPlusPlus));

TEST(ResidualEstimatorNames, RoundTrip) {
  for (const auto e :
       {ResidualEstimator::kGaussianProbes, ResidualEstimator::kHutchinson,
        ResidualEstimator::kHutchPlusPlus}) {
    EXPECT_EQ(parse_residual_estimator(residual_estimator_name(e)), e);
  }
  EXPECT_THROW(parse_residual_estimator("bogus"), CheckError);
}

TEST(ResidualEstimate, HutchppFallsBackBelowThreeProbes) {
  Rng rng(11);
  Matrix x(8, 6);
  for (std::size_t i = 0; i < 8; ++i) rng.fill_normal(x.row(i));
  Matrix b(6, 2);
  for (std::size_t i = 0; i < 6; ++i) rng.fill_normal(b.row(i));
  orthonormalize_columns(b);
  const Matrix basis = b.transposed();
  Rng est_rng(12);
  EXPECT_NO_THROW(estimate_residual(
      x, basis, ResidualEstimator::kHutchPlusPlus, 2, est_rng));
}

}  // namespace
}  // namespace arams::linalg
