// Tests for the Jacobi symmetric eigensolver.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/eigen_sym.hpp"
#include "linalg/qr.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace arams::linalg {
namespace {

Matrix random_symmetric(std::size_t n, Rng& rng) {
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = rng.normal();
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  return a;
}

TEST(EigenSym, DiagonalMatrix) {
  const Matrix a{{3.0, 0.0}, {0.0, 1.0}};
  const SymmetricEig eig = jacobi_eigen_symmetric(a);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-12);
}

TEST(EigenSym, Known2x2) {
  // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
  const Matrix a{{2.0, 1.0}, {1.0, 2.0}};
  const SymmetricEig eig = jacobi_eigen_symmetric(a);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-12);
}

TEST(EigenSym, NonSquareThrows) {
  EXPECT_THROW(jacobi_eigen_symmetric(Matrix(2, 3)), CheckError);
}

TEST(EigenSym, EmptyThrows) {
  EXPECT_THROW(jacobi_eigen_symmetric(Matrix()), CheckError);
}

class EigenSizes : public ::testing::TestWithParam<int> {};

TEST_P(EigenSizes, ReconstructsMatrix) {
  const auto n = static_cast<std::size_t>(GetParam());
  Rng rng(static_cast<std::uint64_t>(n) * 31);
  const Matrix a = random_symmetric(n, rng);
  const SymmetricEig eig = jacobi_eigen_symmetric(a);

  // A = V diag(λ) Vᵀ.
  Matrix vl = eig.vectors;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      vl(i, j) *= eig.values[j];
    }
  }
  const Matrix back = matmul_nt(vl, eig.vectors);
  EXPECT_LT(Matrix::max_abs_diff(back, a), 1e-8 * std::max(1.0, frobenius_norm(a)));
}

TEST_P(EigenSizes, EigenvectorsOrthonormal) {
  const auto n = static_cast<std::size_t>(GetParam());
  Rng rng(static_cast<std::uint64_t>(n) * 37);
  const Matrix a = random_symmetric(n, rng);
  const SymmetricEig eig = jacobi_eigen_symmetric(a);
  EXPECT_LT(orthonormality_defect(eig.vectors), 1e-9);
}

TEST_P(EigenSizes, ValuesSortedDescending) {
  const auto n = static_cast<std::size_t>(GetParam());
  Rng rng(static_cast<std::uint64_t>(n) * 41);
  const Matrix a = random_symmetric(n, rng);
  const SymmetricEig eig = jacobi_eigen_symmetric(a);
  for (std::size_t i = 1; i < n; ++i) {
    EXPECT_GE(eig.values[i - 1], eig.values[i]);
  }
}

TEST_P(EigenSizes, TraceAndFrobeniusPreserved) {
  const auto n = static_cast<std::size_t>(GetParam());
  Rng rng(static_cast<std::uint64_t>(n) * 43);
  const Matrix a = random_symmetric(n, rng);
  const SymmetricEig eig = jacobi_eigen_symmetric(a);
  double trace = 0.0, eigsum = 0.0, fro2 = 0.0, lam2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    trace += a(i, i);
    eigsum += eig.values[i];
    lam2 += eig.values[i] * eig.values[i];
  }
  fro2 = frobenius_norm_squared(a);
  EXPECT_NEAR(trace, eigsum, 1e-8 * std::max(1.0, std::abs(trace)));
  EXPECT_NEAR(fro2, lam2, 1e-8 * std::max(1.0, fro2));
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenSizes,
                         ::testing::Values(1, 2, 3, 5, 10, 25, 60));

TEST(EigenSym, PsdGramHasNonNegativeEigenvalues) {
  Rng rng(55);
  Matrix b(4, 10);
  for (std::size_t i = 0; i < 4; ++i) rng.fill_normal(b.row(i));
  const Matrix g = gram_rows(b);
  const SymmetricEig eig = jacobi_eigen_symmetric(g);
  for (const double v : eig.values) {
    EXPECT_GE(v, -1e-9);
  }
}

TEST(EigenSym, HandlesMildAsymmetryFromRoundoff) {
  Matrix a{{2.0, 1.0 + 1e-14}, {1.0, 2.0}};
  const SymmetricEig eig = jacobi_eigen_symmetric(a);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-10);
}

}  // namespace
}  // namespace arams::linalg
