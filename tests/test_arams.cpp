// ARAMS (Algorithm 3): the four Fig. 1 variants must all produce valid
// sketches; sampling must reduce work; the combined guarantee must hold in
// expectation.

#include <gtest/gtest.h>

#include <cmath>

#include "core/arams_sketch.hpp"
#include "data/synthetic.hpp"
#include "linalg/blas.hpp"
#include "linalg/norms.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace arams::core {
namespace {

using linalg::Matrix;

Matrix low_rank_data(std::size_t n, std::size_t d, std::uint64_t seed) {
  data::SyntheticConfig config;
  config.n = n;
  config.d = d;
  config.spectrum.kind = data::DecayKind::kExponential;
  config.spectrum.count = std::min(n, d) / 2;
  config.spectrum.rate = 0.15;
  Rng rng(seed);
  return data::make_low_rank(config, rng);
}

TEST(Arams, InvalidBetaThrows) {
  AramsConfig config;
  config.beta = 0.0;
  EXPECT_THROW(Arams{config}, CheckError);
  config.beta = 1.5;
  EXPECT_THROW(Arams{config}, CheckError);
}

class AramsVariants
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(AramsVariants, ProducesValidSketch) {
  const auto [sampling, adaptive] = GetParam();
  AramsConfig config;
  config.use_sampling = sampling;
  config.rank_adaptive = adaptive;
  config.beta = 0.8;
  config.ell = 12;
  config.epsilon = 0.1;
  Arams arams(config);

  const Matrix a = low_rank_data(300, 40, 1);
  const AramsResult result = arams.sketch_matrix(a);
  EXPECT_GT(result.sketch.rows(), 0u);
  EXPECT_LE(result.sketch.rows(), result.final_ell);
  EXPECT_EQ(result.sketch.cols(), 40u);
  EXPECT_GE(result.final_ell, config.ell);

  // Sketch must capture most of the data's covariance (relative error
  // well below 1 for exponentially decaying data).
  Rng power(2);
  const double rel =
      linalg::covariance_error_relative(a, result.sketch, power, 100);
  EXPECT_LT(rel, 0.5);
}

INSTANTIATE_TEST_SUITE_P(Grid, AramsVariants,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool()));

TEST(Arams, SamplingReducesRowsProcessed) {
  const Matrix a = low_rank_data(400, 30, 3);

  AramsConfig with;
  with.use_sampling = true;
  with.beta = 0.5;
  with.rank_adaptive = false;
  with.ell = 10;
  AramsConfig without = with;
  without.use_sampling = false;

  Arams s1(with), s2(without);
  const AramsResult r1 = s1.sketch_matrix(a);
  const AramsResult r2 = s2.sketch_matrix(a);
  EXPECT_EQ(r1.rows_sampled, 200u);
  EXPECT_EQ(r2.rows_sampled, 400u);
  EXPECT_LT(r1.report.counter("rows_processed"),
            r2.report.counter("rows_processed"));
  EXPECT_LT(r1.report.counter("svd_count"), r2.report.counter("svd_count"));
}

TEST(Arams, BetaOneSkipsSampling) {
  AramsConfig config;
  config.use_sampling = true;
  config.beta = 1.0;
  config.rank_adaptive = false;
  config.ell = 8;
  Arams arams(config);
  const Matrix a = low_rank_data(100, 20, 4);
  const AramsResult result = arams.sketch_matrix(a);
  EXPECT_EQ(result.rows_sampled, 100u);
}

TEST(Arams, StreamingMatchesBatchRowBudget) {
  AramsConfig config;
  config.use_sampling = false;
  config.rank_adaptive = false;
  config.ell = 8;
  Arams arams(config);
  const Matrix a = low_rank_data(120, 16, 5);
  for (std::size_t start = 0; start < 120; start += 40) {
    arams.push_batch(a.slice_rows(start, start + 40));
  }
  EXPECT_EQ(arams.stats().rows_processed, 120);
  const Matrix sketch = arams.sketch();
  EXPECT_LE(sketch.rows(), 8u);
}

TEST(Arams, StreamingSketchKeepsGuarantee) {
  AramsConfig config;
  config.use_sampling = false;
  config.rank_adaptive = false;
  config.ell = 10;
  Arams arams(config);
  const Matrix a = low_rank_data(200, 24, 6);
  for (std::size_t start = 0; start < 200; start += 25) {
    arams.push_batch(a.slice_rows(start, start + 25));
  }
  Rng power(7);
  const double err = linalg::covariance_error(a, arams.sketch(), power, 150);
  EXPECT_LE(err, linalg::frobenius_norm_squared(a) / 10.0 * 1.001);
}

TEST(Arams, BasisProjectsDominantDirection) {
  // Rank-1 data: the 1-component basis must capture nearly all the mass.
  Matrix a(60, 15);
  Rng rng(8);
  std::vector<double> dir(15);
  rng.fill_normal(dir);
  linalg::scale(dir, 1.0 / linalg::norm2(dir));
  for (std::size_t i = 0; i < 60; ++i) {
    const double c = rng.normal();
    for (std::size_t j = 0; j < 15; ++j) {
      a(i, j) = c * dir[j];
    }
  }
  AramsConfig config;
  config.use_sampling = false;
  config.rank_adaptive = false;
  config.ell = 6;
  Arams arams(config);
  arams.sketch_matrix(a);
  const Matrix basis = arams.basis(1);
  ASSERT_EQ(basis.rows(), 1u);
  EXPECT_NEAR(std::abs(linalg::dot(basis.row(0), dir)), 1.0, 1e-6);
}

TEST(Arams, RankAdaptiveGrowsUnderTightEpsilon) {
  AramsConfig config;
  config.use_sampling = false;
  config.rank_adaptive = true;
  config.ell = 8;
  config.epsilon = 0.02;
  Arams arams(config);
  Matrix noise(500, 48);
  Rng rng(9);
  for (std::size_t i = 0; i < noise.rows(); ++i) {
    rng.fill_normal(noise.row(i));
  }
  const AramsResult result = arams.sketch_matrix(noise);
  EXPECT_GT(result.final_ell, 8u);
  EXPECT_GT(result.report.counter("rank_increases"), 0);
}

TEST(Arams, TimersPopulated) {
  AramsConfig config;
  config.ell = 8;
  Arams arams(config);
  const AramsResult result = arams.sketch_matrix(low_rank_data(200, 20, 10));
  EXPECT_GE(result.report.seconds("sample"), 0.0);
  EXPECT_GT(result.report.seconds("sketch"), 0.0);
  EXPECT_TRUE(result.report.has_stage("sample"));
  EXPECT_TRUE(result.report.has_stage("sketch"));
}

TEST(Arams, ValidateReportsEveryProblem) {
  AramsConfig config;
  EXPECT_TRUE(config.validate().empty());
  config.beta = 0.0;
  config.ell = 1;
  const std::vector<std::string> errors = config.validate();
  EXPECT_GE(errors.size(), 2u);  // all problems listed, not just the first
  for (const auto& e : errors) {
    EXPECT_FALSE(e.empty());
  }
}

}  // namespace
}  // namespace arams::core
