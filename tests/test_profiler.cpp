// Sampling profiler: deterministic sample_once() attribution over the
// ScopedSpan stacks, folded-stack output, root fractions, gauge
// publication, and the start/stop lifecycle. All attribution tests drive
// sampling by hand — no timer races.

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace arams::obs {
namespace {

TEST(SamplingProfiler, IdleThreadsFoldUnderIdle) {
  // Register this thread's span stack (stacks only exist once a span has
  // been opened on the thread), then sample with no span open.
  { const ScopedSpan warmup("prof.test.warmup"); }
  SamplingProfiler profiler;
  profiler.sample_once();
  EXPECT_EQ(profiler.sweeps(), 1u);
  EXPECT_GE(profiler.samples(), 1u);
  EXPECT_DOUBLE_EQ(profiler.root_fraction("(idle)"), 1.0);
  std::ostringstream out;
  profiler.write_folded(out);
  EXPECT_NE(out.str().find("(idle) "), std::string::npos);
}

TEST(SamplingProfiler, AttributesSamplesToTheOpenSpanChain) {
  SamplingProfiler profiler;
  {
    const ScopedSpan outer("prof.test.outer");
    const ScopedSpan inner("prof.test.inner");
    for (int i = 0; i < 4; ++i) profiler.sample_once();
  }
  EXPECT_EQ(profiler.sweeps(), 4u);
  // This thread contributed 4 samples rooted at the outer span; other
  // registered stacks (if any) were idle.
  EXPECT_GT(profiler.root_fraction("prof.test.outer"), 0.0);
  std::ostringstream out;
  profiler.write_folded(out);
  const std::string folded = out.str();
  EXPECT_NE(folded.find("prof.test.outer;prof.test.inner 4"),
            std::string::npos);
  // Fractions over all roots sum to one.
  const double total = profiler.root_fraction("prof.test.outer") +
                       profiler.root_fraction("(idle)");
  EXPECT_DOUBLE_EQ(total, 1.0);
}

TEST(SamplingProfiler, PublishGaugesWritesFractionsAndSampleCounter) {
  SamplingProfiler profiler;
  {
    const ScopedSpan span("prof.test.root");
    profiler.sample_once();
    profiler.sample_once();
  }
  MetricsRegistry registry;
  profiler.publish_gauges(registry);
  const double fraction =
      registry.gauge("profile.stage_cpu_fraction.prof.test.root").value();
  EXPECT_GT(fraction, 0.0);
  EXPECT_LE(fraction, 1.0);
  EXPECT_EQ(registry.counter("profile.samples").value(),
            static_cast<long>(profiler.samples()));
  // Publishing again adds only the delta — the counter must not double.
  profiler.publish_gauges(registry);
  EXPECT_EQ(registry.counter("profile.samples").value(),
            static_cast<long>(profiler.samples()));
  // The idle gauge is published under the sanitized "idle" suffix.
  profiler.sample_once();  // no span open now
  profiler.publish_gauges(registry);
  EXPECT_GE(registry.gauge("profile.stage_cpu_fraction.idle").value(), 0.0);
}

TEST(SamplingProfiler, RootFractionOfUnseenRootIsZero) {
  SamplingProfiler profiler;
  profiler.sample_once();
  EXPECT_DOUBLE_EQ(profiler.root_fraction("never.sampled"), 0.0);
}

TEST(SamplingProfiler, StartStopLifecycle) {
  // Register this thread's stack up front: a sweep taken before any span
  // ever existed on any thread sees an empty registry and attributes no
  // samples at all.
  { const ScopedSpan warmup("prof.test.warmup"); }
  SamplingProfiler::Config config;
  config.interval_ms = 0.5;
  SamplingProfiler profiler(config);
  EXPECT_FALSE(profiler.running());
  profiler.start();
  EXPECT_TRUE(profiler.running());
  profiler.start();  // idempotent
  {
    const ScopedSpan span("prof.test.lifecycle");
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  profiler.stop();
  EXPECT_FALSE(profiler.running());
  profiler.stop();  // idempotent
  EXPECT_GT(profiler.sweeps(), 0u);
  EXPECT_GE(profiler.samples(), profiler.sweeps());
}

}  // namespace
}  // namespace arams::obs
