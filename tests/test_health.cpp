// Numerical-health watchdog: threshold classification, windowed checks,
// incident log, callbacks — plus the end-to-end NaN-burst drill through
// StreamingMonitor and the Prometheus exporter.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "obs/export_prom.hpp"
#include "obs/health.hpp"
#include "stream/monitor.hpp"
#include "stream/source.hpp"
#include "util/check.hpp"

namespace arams::obs {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

HealthSample clean_sample(double t) {
  HealthSample sample;
  sample.wall_seconds = t;
  sample.sketch_error = 0.01;
  sample.orthogonality = 1e-12;
  sample.rank = 16;
  sample.frames_seen = static_cast<long>(t * 100.0);
  return sample;
}

TEST(HealthState, ToStringCoversAllStates) {
  EXPECT_STREQ(to_string(HealthState::kOk), "ok");
  EXPECT_STREQ(to_string(HealthState::kDegraded), "degraded");
  EXPECT_STREQ(to_string(HealthState::kCritical), "critical");
}

TEST(HealthMonitor, StaysOkOnCleanSamples) {
  HealthMonitor monitor({}, nullptr);
  for (int t = 1; t <= 10; ++t) {
    EXPECT_EQ(monitor.observe(clean_sample(t)), HealthState::kOk);
  }
  EXPECT_EQ(monitor.transitions(), 0);
  EXPECT_EQ(monitor.state_reason(), "ok");
  EXPECT_TRUE(monitor.incidents().empty());
}

TEST(HealthMonitor, UnmeasuredNaNFieldsAreSkipped) {
  HealthMonitor monitor({}, nullptr);
  HealthSample sample;  // every instantaneous field defaults to NaN
  sample.wall_seconds = 1.0;
  sample.frames_seen = 100;
  EXPECT_EQ(monitor.observe(sample), HealthState::kOk);
}

TEST(HealthMonitor, SketchErrorThresholdsEscalateAndRecover) {
  HealthMonitor monitor({}, nullptr);
  HealthSample sample = clean_sample(1.0);
  EXPECT_EQ(monitor.observe(sample), HealthState::kOk);

  sample.sketch_error = 0.20;  // ≥ 0.15 → degraded
  EXPECT_EQ(monitor.observe(sample), HealthState::kDegraded);
  EXPECT_NE(monitor.state_reason().find("sketch error"), std::string::npos);

  sample.sketch_error = 0.50;  // ≥ 0.40 → critical
  EXPECT_EQ(monitor.observe(sample), HealthState::kCritical);

  sample.sketch_error = 0.01;  // instantaneous check: recovery is immediate
  EXPECT_EQ(monitor.observe(sample), HealthState::kOk);
  EXPECT_EQ(monitor.transitions(), 3);
}

TEST(HealthMonitor, InfiniteReadingIsCritical) {
  HealthMonitor monitor({}, nullptr);
  HealthSample sample = clean_sample(1.0);
  sample.sketch_error = std::numeric_limits<double>::infinity();
  EXPECT_EQ(monitor.observe(sample), HealthState::kCritical);
}

TEST(HealthMonitor, OrthogonalityAndQueueChecksFire) {
  HealthMonitor monitor({}, nullptr);
  HealthSample sample = clean_sample(1.0);
  sample.orthogonality = 1e-4;  // between degraded (1e-6) and critical (1e-3)
  EXPECT_EQ(monitor.observe(sample), HealthState::kDegraded);
  sample.orthogonality = 1e-12;
  sample.queue_saturation = 0.99;  // ≥ 0.98 → critical
  EXPECT_EQ(monitor.observe(sample), HealthState::kCritical);
  EXPECT_NE(monitor.state_reason().find("queue saturation"),
            std::string::npos);
}

TEST(HealthMonitor, NonFiniteFrameFractionIsWindowed) {
  HealthThresholds thresholds;
  thresholds.window = 4;
  HealthMonitor monitor(thresholds, nullptr);

  HealthSample sample = clean_sample(1.0);
  sample.frames_seen = 100;
  sample.frames_nonfinite = 0;
  EXPECT_EQ(monitor.observe(sample), HealthState::kOk);

  // 50 of the next 100 frames were NaN: fraction 0.5 ≥ 0.05 → critical.
  sample.wall_seconds = 2.0;
  sample.frames_seen = 200;
  sample.frames_nonfinite = 50;
  EXPECT_EQ(monitor.observe(sample), HealthState::kCritical);
  EXPECT_NE(monitor.state_reason().find("non-finite"), std::string::npos);

  // Clean frames resume; once the burst-era sample slides out of the
  // 4-sample window the differenced fraction returns to 0 → ok.
  HealthState state = HealthState::kCritical;
  for (int t = 3; t <= 7; ++t) {
    sample.wall_seconds = t;
    sample.frames_seen = 100 * t;
    state = monitor.observe(sample);  // frames_nonfinite stays 50
  }
  EXPECT_EQ(state, HealthState::kOk);
  EXPECT_EQ(monitor.transitions(), 2);  // ok→critical, critical→ok
}

TEST(HealthMonitor, RankAdaptationThrashDegrades) {
  HealthMonitor monitor({}, nullptr);
  HealthSample sample = clean_sample(1.0);
  sample.rank_increases = 0;
  EXPECT_EQ(monitor.observe(sample), HealthState::kOk);
  sample.wall_seconds = 2.0;
  sample.rank_increases = 5;  // ≥ 4 growths within the window
  sample.rank = 48;
  EXPECT_EQ(monitor.observe(sample), HealthState::kDegraded);
  EXPECT_NE(monitor.state_reason().find("thrash"), std::string::npos);
}

TEST(HealthMonitor, CallbacksFireOncePerTransitionWithTheIncident) {
  HealthMonitor monitor({}, nullptr);
  std::vector<HealthIncident> seen;
  monitor.on_transition(
      [&](const HealthIncident& incident) { seen.push_back(incident); });

  HealthSample sample = clean_sample(1.0);
  monitor.observe(sample);           // ok, no transition
  sample.sketch_error = 0.50;
  monitor.observe(sample);           // ok → critical
  monitor.observe(sample);           // still critical, no new incident
  sample.sketch_error = 0.01;
  monitor.observe(sample);           // critical → ok

  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].from, HealthState::kOk);
  EXPECT_EQ(seen[0].to, HealthState::kCritical);
  EXPECT_NE(seen[0].reason.find("sketch error"), std::string::npos);
  EXPECT_EQ(seen[1].from, HealthState::kCritical);
  EXPECT_EQ(seen[1].to, HealthState::kOk);
}

TEST(HealthMonitor, IncidentLogIsBounded) {
  HealthThresholds thresholds;
  thresholds.max_incidents = 4;
  HealthMonitor monitor(thresholds, nullptr);
  HealthSample sample = clean_sample(1.0);
  // 10 round trips = 20 transitions; only the latest 4 incidents survive.
  for (int i = 0; i < 10; ++i) {
    sample.sketch_error = 0.50;
    monitor.observe(sample);
    sample.sketch_error = 0.01;
    monitor.observe(sample);
  }
  EXPECT_EQ(monitor.transitions(), 20);
  const std::vector<HealthIncident> log = monitor.incidents();
  ASSERT_EQ(log.size(), 4u);
  // Oldest-first, and the final entry is the last critical→ok recovery.
  EXPECT_EQ(log.back().to, HealthState::kOk);
}

TEST(HealthMonitor, IncidentJsonIsOneObjectPerLine) {
  HealthMonitor monitor({}, nullptr);
  HealthSample sample = clean_sample(1.0);
  sample.sketch_error = 0.50;
  monitor.observe(sample);
  std::ostringstream out;
  monitor.write_incidents_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"from\":\"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"to\":\"critical\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '\n'), 1);
}

TEST(HealthMonitor, RegistryReceivesStateGaugeAndTransitionCounter) {
  MetricsRegistry registry;
  HealthMonitor monitor({}, &registry);
  HealthSample sample = clean_sample(1.0);
  sample.sketch_error = 0.50;
  monitor.observe(sample);
  EXPECT_DOUBLE_EQ(registry.gauge("health.state").value(), 2.0);
  EXPECT_EQ(registry.counter("health.transitions").value(), 1);
}

// ------------------------------------------------- end-to-end NaN drill

// The acceptance drill from the issue: a streaming run with an injected
// NaN burst must drive the watchdog out of OK and back, with the burst
// visible in the callback stream and in the exported Prometheus snapshot.
TEST(MonitorHealthIntegration, NanBurstDegradesThenRecovers) {
  stream::MonitorConfig config;
  config.batch_size = 16;
  config.reservoir_size = 128;
  config.pipeline.sketch.ell = 8;
  config.pipeline.sketch.rank_adaptive = false;
  config.pipeline.sketch.use_sampling = false;
  config.health.window = 4;  // recover within ~4 clean batches
  stream::StreamingMonitor monitor(config);

  std::vector<HealthIncident> incidents;
  monitor.health().on_transition(
      [&](const HealthIncident& incident) { incidents.push_back(incident); });

  data::BeamProfileConfig beam;
  beam.height = 16;
  beam.width = 16;
  stream::BeamProfileSource source(beam, 260, 120.0, 11);
  while (auto event = source.next()) {
    if (event->shot_id >= 60 && event->shot_id < 90) {
      event->frame.at(0, 0) = kNaN;  // the detector tile goes bad
    }
    monitor.ingest(*event);
  }
  monitor.flush();

  EXPECT_EQ(monitor.nonfinite_frames(), 30);
  // The burst tripped the watchdog...
  bool worsened = false;
  for (const HealthIncident& incident : incidents) {
    if (incident.to != HealthState::kOk) {
      worsened = true;
      EXPECT_NE(incident.reason.find("non-finite"), std::string::npos);
    }
  }
  EXPECT_TRUE(worsened);
  // ...and the clean tail recovered it.
  EXPECT_EQ(monitor.health().state(), HealthState::kOk);
  ASSERT_GE(incidents.size(), 2u);
  EXPECT_EQ(incidents.back().to, HealthState::kOk);

  // The incident survives into the exported snapshot.
  std::ostringstream prom;
  write_prometheus(prom, metrics(), &monitor.health());
  const std::string text = prom.str();
  EXPECT_NE(text.find("arams_health_observed_state 0"), std::string::npos);
  EXPECT_NE(text.find("arams_health_incidents"), std::string::npos);
  EXPECT_NE(text.find("arams_monitor_nonfinite_frames"), std::string::npos);
}

}  // namespace
}  // namespace arams::obs
