// Tests for spectral-norm power iteration, covariance error, and the
// Algorithm-1 randomized projection-residual estimator.

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"
#include "linalg/blas.hpp"
#include "linalg/norms.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace arams::linalg {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    rng.fill_normal(m.row(i));
  }
  return m;
}

TEST(SpectralNorm, MatchesLargestSingularValue) {
  Rng rng(1);
  const Matrix a = random_matrix(12, 8, rng);
  const ThinSvd svd = jacobi_svd(a);
  Rng power_rng(2);
  const double est = spectral_norm(a, power_rng, 200);
  EXPECT_NEAR(est, svd.sigma[0], 1e-6 * svd.sigma[0]);
}

TEST(SpectralNorm, DiagonalOperator) {
  Rng rng(3);
  const auto matvec = [](std::span<const double> x, std::span<double> y) {
    y[0] = 5.0 * x[0];
    y[1] = -9.0 * x[1];  // negative-dominant eigenvalue
    y[2] = 1.0 * x[2];
  };
  const double est = spectral_norm_sym(matvec, 3, rng, 300);
  EXPECT_NEAR(est, 9.0, 1e-6);
}

TEST(SpectralNorm, ZeroOperatorIsZero) {
  Rng rng(4);
  const auto matvec = [](std::span<const double> x, std::span<double> y) {
    (void)x;
    for (auto& v : y) v = 0.0;
  };
  EXPECT_EQ(spectral_norm_sym(matvec, 4, rng, 10), 0.0);
}

TEST(CovarianceError, IdenticalMatricesIsZero) {
  Rng rng(5);
  const Matrix a = random_matrix(10, 6, rng);
  Rng power_rng(6);
  EXPECT_NEAR(covariance_error(a, a, power_rng), 0.0, 1e-9);
}

TEST(CovarianceError, MatchesExplicitDifference) {
  Rng rng(7);
  const Matrix a = random_matrix(9, 5, rng);
  const Matrix b = random_matrix(4, 5, rng);
  // Explicit d×d difference on this small case.
  const Matrix diff_mat = [&] {
    Matrix at_a = gram_cols(a);
    const Matrix bt_b = gram_cols(b);
    for (std::size_t i = 0; i < at_a.rows(); ++i) {
      for (std::size_t j = 0; j < at_a.cols(); ++j) {
        at_a(i, j) -= bt_b(i, j);
      }
    }
    return at_a;
  }();
  const ThinSvd svd = jacobi_svd(diff_mat);
  Rng power_rng(8);
  const double est = covariance_error(a, b, power_rng, 300);
  EXPECT_NEAR(est, svd.sigma[0], 1e-5 * std::max(1.0, svd.sigma[0]));
}

TEST(CovarianceError, ColumnMismatchThrows) {
  Rng rng(9);
  EXPECT_THROW(covariance_error(Matrix(2, 3), Matrix(2, 4), rng), CheckError);
}

TEST(CovarianceErrorRelative, ScalesWithData) {
  Rng rng(10);
  const Matrix a = random_matrix(8, 4, rng);
  const Matrix b = random_matrix(3, 4, rng);
  Rng r1(11), r2(11);
  const double abs_err = covariance_error(a, b, r1, 100);
  const double rel_err = covariance_error_relative(a, b, r2, 100);
  EXPECT_NEAR(rel_err, abs_err / frobenius_norm_squared(a), 1e-9);
}

TEST(ProjectionResidual, ZeroWhenBasisSpansData) {
  // Data that lies exactly in a 2-D subspace.
  Rng rng(12);
  Matrix basis = random_matrix(2, 10, rng);
  orthonormalize_columns(basis = basis.transposed());
  basis = basis.transposed();  // 2×10 orthonormal rows
  Matrix x(6, 10);
  for (std::size_t i = 0; i < 6; ++i) {
    const double c0 = rng.normal();
    const double c1 = rng.normal();
    for (std::size_t j = 0; j < 10; ++j) {
      x(i, j) = c0 * basis(0, j) + c1 * basis(1, j);
    }
  }
  EXPECT_NEAR(projection_residual_exact(x, basis), 0.0, 1e-9);
}

TEST(ProjectionResidual, FullResidualForOrthogonalData) {
  // Basis spans e0; data lives on e1 → residual = ‖X‖²_F.
  Matrix basis(1, 4);
  basis(0, 0) = 1.0;
  Matrix x(3, 4);
  x(0, 1) = 2.0;
  x(1, 1) = -1.0;
  x(2, 1) = 0.5;
  EXPECT_NEAR(projection_residual_exact(x, basis),
              frobenius_norm_squared(x), 1e-12);
}

TEST(ProjectionResidualEstimate, UnbiasedOverManyProbes) {
  Rng rng(13);
  const Matrix x = random_matrix(20, 15, rng);
  Matrix b = random_matrix(15, 3, rng);
  orthonormalize_columns(b);
  const Matrix basis = b.transposed();  // 3×15 orthonormal rows

  const double exact = projection_residual_exact(x, basis);
  Rng probe_rng(14);
  const double est = estimate_projection_residual(x, basis, 400, probe_rng);
  EXPECT_NEAR(est, exact, 0.15 * exact);
}

TEST(ProjectionResidualEstimate, MoreProbesReduceError) {
  // The paper reports ~10% error reduction per 10 probes; check the
  // monotone trend statistically over repetitions.
  Rng rng(15);
  const Matrix x = random_matrix(30, 12, rng);
  Matrix b = random_matrix(12, 2, rng);
  orthonormalize_columns(b);
  const Matrix basis = b.transposed();
  const double exact = projection_residual_exact(x, basis);

  double err_small = 0.0, err_large = 0.0;
  constexpr int kReps = 30;
  for (int rep = 0; rep < kReps; ++rep) {
    Rng r1(100 + rep), r2(100 + rep);
    err_small +=
        std::abs(estimate_projection_residual(x, basis, 2, r1) - exact);
    err_large +=
        std::abs(estimate_projection_residual(x, basis, 40, r2) - exact);
  }
  EXPECT_LT(err_large, err_small);
}

TEST(ProjectionResidualEstimate, InvalidArgumentsThrow) {
  Rng rng(16);
  const Matrix x(4, 6);
  const Matrix basis(2, 6);
  EXPECT_THROW(estimate_projection_residual(x, basis, 0, rng), CheckError);
  EXPECT_THROW(estimate_projection_residual(x, Matrix(2, 5), 3, rng),
               CheckError);
}

}  // namespace
}  // namespace arams::linalg
