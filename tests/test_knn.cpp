// kNN graphs: exact brute force and NN-descent recall.

#include <gtest/gtest.h>

#include <cmath>

#include "embed/knn.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace arams::embed {
namespace {

using linalg::Matrix;

Matrix random_points(std::size_t n, std::size_t d, std::uint64_t seed) {
  Matrix m(n, d);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) rng.fill_normal(m.row(i));
  return m;
}

TEST(ExactKnn, ValidatesArguments) {
  const Matrix pts = random_points(5, 2, 1);
  EXPECT_THROW(exact_knn(pts, 0), CheckError);
  EXPECT_THROW(exact_knn(pts, 5), CheckError);
  EXPECT_THROW(exact_knn(Matrix(1, 2), 1), CheckError);
}

TEST(ExactKnn, KnownLineGeometry) {
  // Points on a line at 0, 1, 2, 10: neighbours are unambiguous.
  Matrix pts(4, 1);
  pts(0, 0) = 0.0;
  pts(1, 0) = 1.0;
  pts(2, 0) = 2.0;
  pts(3, 0) = 10.0;
  const KnnGraph g = exact_knn(pts, 2);
  EXPECT_EQ(g.neighbor(0, 0), 1u);
  EXPECT_EQ(g.neighbor(0, 1), 2u);
  EXPECT_EQ(g.neighbor(3, 0), 2u);
  EXPECT_DOUBLE_EQ(g.distance(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(g.distance(3, 0), 8.0);
}

TEST(ExactKnn, ExcludesSelf) {
  const Matrix pts = random_points(20, 3, 2);
  const KnnGraph g = exact_knn(pts, 5);
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_NE(g.neighbor(i, j), i);
    }
  }
}

TEST(ExactKnn, DistancesSortedAscending) {
  const Matrix pts = random_points(30, 4, 3);
  const KnnGraph g = exact_knn(pts, 6);
  for (std::size_t i = 0; i < 30; ++i) {
    for (std::size_t j = 1; j < 6; ++j) {
      EXPECT_GE(g.distance(i, j), g.distance(i, j - 1));
    }
  }
}

TEST(NnDescent, HighRecallOnRandomPoints) {
  const Matrix pts = random_points(300, 5, 4);
  const KnnGraph exact = exact_knn(pts, 10);
  Rng rng(5);
  const KnnGraph approx = nn_descent(pts, 10, rng, 8);
  EXPECT_GT(knn_recall(approx, exact), 0.85);
}

TEST(NnDescent, PerfectRecallOnWellSeparatedClusters) {
  // Two tight, far-apart clusters: any reasonable pass count finds the
  // intra-cluster neighbours.
  Matrix pts(40, 2);
  Rng rng(6);
  for (std::size_t i = 0; i < 40; ++i) {
    const double cx = (i < 20) ? 0.0 : 100.0;
    pts(i, 0) = cx + 0.1 * rng.normal();
    pts(i, 1) = 0.1 * rng.normal();
  }
  const KnnGraph exact = exact_knn(pts, 5);
  Rng rng2(7);
  const KnnGraph approx = nn_descent(pts, 5, rng2, 10);
  EXPECT_GT(knn_recall(approx, exact), 0.95);
}

TEST(BuildKnn, SelectsExactBelowThreshold) {
  const Matrix pts = random_points(50, 3, 8);
  Rng rng(9);
  const KnnGraph auto_g = build_knn(pts, 4, rng, 100);
  const KnnGraph exact = exact_knn(pts, 4);
  EXPECT_DOUBLE_EQ(knn_recall(auto_g, exact), 1.0);
}

TEST(BuildKnn, UsesApproximateAboveThreshold) {
  const Matrix pts = random_points(120, 3, 10);
  Rng rng(11);
  const KnnGraph g = build_knn(pts, 5, rng, 50);  // force NN-descent
  EXPECT_EQ(g.n, 120u);
  EXPECT_EQ(g.k, 5u);
  const KnnGraph exact = exact_knn(pts, 5);
  EXPECT_GT(knn_recall(g, exact), 0.8);
}

TEST(NnDescent, ScalarPathRecallRegression) {
  // Regression pin for the O(k) NeighborList insertion rewrite and the
  // bounded insertion-scan selection: on the scalar arithmetic path
  // (use_gemm = false) both must reproduce the historical algorithm's
  // choices exactly, so recall against the exact graph is *equal* to the
  // values the pre-rewrite implementation produced, not merely close.
  const struct {
    std::size_t n, d;
    std::uint64_t fill_seed, descent_seed;
    double expected_recall;
  } cases[] = {
      {400, 8, 21, 22, 0.999},
      {300, 5, 4, 5, 0.9996666666666667},
  };
  for (const auto& c : cases) {
    linalg::Matrix pts(c.n, c.d);
    Rng fill(c.fill_seed);
    for (std::size_t i = 0; i < c.n; ++i) {
      for (auto& v : pts.row(i)) v = fill.uniform(-1.0, 1.0);
    }
    linalg::Workspace ws;
    const DistanceOptions scalar{.use_gemm = false};
    KnnGraph exact;
    exact_knn(pts, 10, ws, exact, scalar);
    Rng rng(c.descent_seed);
    KnnGraph approx;
    nn_descent(pts, 10, rng, ws, approx, 8, 1.0, scalar);
    EXPECT_DOUBLE_EQ(knn_recall(approx, exact), c.expected_recall)
        << "n=" << c.n << " d=" << c.d;
  }
}

TEST(KnnRecall, IdenticalGraphsGiveOne) {
  const Matrix pts = random_points(25, 2, 12);
  const KnnGraph g = exact_knn(pts, 3);
  EXPECT_DOUBLE_EQ(knn_recall(g, g), 1.0);
}

TEST(KnnRecall, IncomparableGraphsThrow) {
  const Matrix pts = random_points(25, 2, 13);
  const KnnGraph a = exact_knn(pts, 3);
  const KnnGraph b = exact_knn(pts, 4);
  EXPECT_THROW(knn_recall(a, b), CheckError);
}

}  // namespace
}  // namespace arams::embed
