// UMAP internals (smooth-kNN calibration, fuzzy union, a/b curve fit) and
// end-to-end behaviour: well-separated clusters must stay separated.

#include <gtest/gtest.h>

#include <cmath>

#include "embed/metrics.hpp"
#include "embed/umap.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace arams::embed {
namespace {

using linalg::Matrix;

Matrix two_gaussian_clusters(std::size_t per_cluster, double separation,
                             std::uint64_t seed) {
  Matrix pts(2 * per_cluster, 4);
  Rng rng(seed);
  for (std::size_t i = 0; i < 2 * per_cluster; ++i) {
    const double offset = (i < per_cluster) ? 0.0 : separation;
    for (std::size_t c = 0; c < 4; ++c) {
      pts(i, c) = (c == 0 ? offset : 0.0) + rng.normal();
    }
  }
  return pts;
}

TEST(SmoothKnn, SumConstraintHonored) {
  const Matrix pts = two_gaussian_clusters(30, 8.0, 1);
  const KnnGraph g = exact_knn(pts, 10);
  const SmoothKnn smooth = smooth_knn_distances(g);
  const double target = std::log2(10.0);
  for (std::size_t i = 0; i < g.n; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < g.k; ++j) {
      const double d = g.distance(i, j) - smooth.rho[i];
      sum += (d <= 0.0) ? 1.0 : std::exp(-d / smooth.sigma[i]);
    }
    EXPECT_NEAR(sum, target, 0.05 * target);
  }
}

TEST(SmoothKnn, RhoIsNearestNeighborDistance) {
  const Matrix pts = two_gaussian_clusters(20, 5.0, 2);
  const KnnGraph g = exact_knn(pts, 5);
  const SmoothKnn smooth = smooth_knn_distances(g);
  for (std::size_t i = 0; i < g.n; ++i) {
    EXPECT_DOUBLE_EQ(smooth.rho[i], g.distance(i, 0));
  }
}

TEST(FuzzyGraph, WeightsInUnitInterval) {
  const Matrix pts = two_gaussian_clusters(25, 6.0, 3);
  const KnnGraph g = exact_knn(pts, 8);
  const FuzzyGraph fuzzy = fuzzy_simplicial_set(g, smooth_knn_distances(g));
  EXPECT_GT(fuzzy.edges.size(), 0u);
  for (const auto& e : fuzzy.edges) {
    EXPECT_GT(e.weight, 0.0);
    EXPECT_LE(e.weight, 1.0 + 1e-12);
    EXPECT_LT(e.u, e.v);  // canonical orientation, no duplicates
    EXPECT_LT(e.v, fuzzy.n);
  }
}

TEST(FuzzyGraph, NearestNeighborEdgeIsStrong) {
  // Each point's nearest neighbour has d − ρ = 0 → directed weight 1 →
  // symmetric weight 1.
  const Matrix pts = two_gaussian_clusters(15, 10.0, 4);
  const KnnGraph g = exact_knn(pts, 4);
  const FuzzyGraph fuzzy = fuzzy_simplicial_set(g, smooth_knn_distances(g));
  for (std::size_t i = 0; i < g.n; ++i) {
    const std::size_t nn = g.neighbor(i, 0);
    bool found = false;
    for (const auto& e : fuzzy.edges) {
      if ((e.u == std::min(i, nn)) && (e.v == std::max(i, nn))) {
        EXPECT_NEAR(e.weight, 1.0, 1e-9);
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(FitAb, MatchesReferenceValuesForDefaultMinDist) {
  // umap-learn fits a≈1.577, b≈0.895 for spread=1, min_dist=0.1.
  const auto [a, b] = fit_ab(1.0, 0.1);
  EXPECT_NEAR(a, 1.58, 0.25);
  EXPECT_NEAR(b, 0.90, 0.12);
}

TEST(FitAb, LargerMinDistFlattensCurve) {
  const auto [a1, b1] = fit_ab(1.0, 0.0);
  const auto [a2, b2] = fit_ab(1.0, 0.8);
  // Larger min_dist → plateau → smaller a.
  EXPECT_LT(a2, a1);
  (void)b1;
  (void)b2;
}

TEST(FitAb, InvalidArgumentsThrow) {
  EXPECT_THROW(fit_ab(0.0, 0.1), CheckError);
  EXPECT_THROW(fit_ab(1.0, 5.0), CheckError);
}

UmapConfig fast_config() {
  UmapConfig config;
  config.n_neighbors = 10;
  config.n_epochs = 150;
  config.seed = 99;
  return config;
}

TEST(Umap, OutputShape) {
  const Matrix pts = two_gaussian_clusters(40, 8.0, 5);
  const Matrix y = umap_embed(pts, fast_config());
  EXPECT_EQ(y.rows(), pts.rows());
  EXPECT_EQ(y.cols(), 2u);
}

TEST(Umap, DeterministicGivenSeed) {
  const Matrix pts = two_gaussian_clusters(30, 8.0, 6);
  const Matrix y1 = umap_embed(pts, fast_config());
  const Matrix y2 = umap_embed(pts, fast_config());
  EXPECT_EQ(Matrix::max_abs_diff(y1, y2), 0.0);
}

TEST(Umap, SeparatedClustersStaySeparated) {
  constexpr std::size_t kPer = 50;
  const Matrix pts = two_gaussian_clusters(kPer, 20.0, 7);
  const Matrix y = umap_embed(pts, fast_config());

  // Centroid distance must exceed the mean within-cluster spread.
  double c0x = 0, c0y = 0, c1x = 0, c1y = 0;
  for (std::size_t i = 0; i < kPer; ++i) {
    c0x += y(i, 0);
    c0y += y(i, 1);
    c1x += y(kPer + i, 0);
    c1y += y(kPer + i, 1);
  }
  c0x /= kPer;
  c0y /= kPer;
  c1x /= kPer;
  c1y /= kPer;
  const double between = std::hypot(c1x - c0x, c1y - c0y);
  double within = 0.0;
  for (std::size_t i = 0; i < kPer; ++i) {
    within += std::hypot(y(i, 0) - c0x, y(i, 1) - c0y);
    within += std::hypot(y(kPer + i, 0) - c1x, y(kPer + i, 1) - c1y);
  }
  within /= (2.0 * kPer);
  EXPECT_GT(between, 2.0 * within);
}

TEST(Umap, PreservesNeighborhoodsBetterThanRandom) {
  const Matrix pts = two_gaussian_clusters(40, 10.0, 8);
  const Matrix y = umap_embed(pts, fast_config());
  const double t = trustworthiness(pts, y, 8);
  EXPECT_GT(t, 0.8);
}

TEST(Umap, RandomInitAlsoWorks) {
  UmapConfig config = fast_config();
  config.init = UmapConfig::Init::kRandom;
  const Matrix pts = two_gaussian_clusters(30, 15.0, 9);
  const Matrix y = umap_embed(pts, config);
  EXPECT_EQ(y.rows(), 60u);
  const double t = trustworthiness(pts, y, 6);
  EXPECT_GT(t, 0.7);
}

TEST(Umap, SpectralInitSeparatesComponents) {
  // Two far-apart clusters form (nearly) disconnected graph components;
  // the Fiedler-like vector must separate them by sign.
  const Matrix pts = two_gaussian_clusters(25, 50.0, 21);
  const KnnGraph g = exact_knn(pts, 8);
  const FuzzyGraph fuzzy = fuzzy_simplicial_set(g, smooth_knn_distances(g));
  Rng rng(22);
  const Matrix init = spectral_init(fuzzy, 2, rng);
  ASSERT_EQ(init.rows(), 50u);
  // Find the axis where the clusters separate by sign.
  bool separated = false;
  for (std::size_t axis = 0; axis < 2; ++axis) {
    int agree = 0;
    for (std::size_t i = 0; i < 25; ++i) {
      if ((init(i, axis) > 0) == (init(25 + i, axis) < 0)) ++agree;
    }
    if (agree >= 23) separated = true;
  }
  EXPECT_TRUE(separated);
}

TEST(Umap, SpectralInitEndToEnd) {
  UmapConfig config = fast_config();
  config.init = UmapConfig::Init::kSpectral;
  const Matrix pts = two_gaussian_clusters(30, 15.0, 23);
  const Matrix y = umap_embed(pts, config);
  EXPECT_EQ(y.rows(), 60u);
  EXPECT_GT(trustworthiness(pts, y, 6), 0.7);
}

TEST(UmapTransform, PlacesNewPointsNearTheirCluster) {
  constexpr std::size_t kPer = 40;
  const Matrix reference = two_gaussian_clusters(kPer, 20.0, 31);
  UmapConfig config = fast_config();
  const Matrix ref_embedding = umap_embed(reference, config);

  // New points drawn from each cluster must land near that cluster's
  // embedded centroid.
  Matrix fresh(8, 4);
  Rng rng(32);
  for (std::size_t i = 0; i < 8; ++i) {
    const double offset = (i < 4) ? 0.0 : 20.0;
    for (std::size_t c = 0; c < 4; ++c) {
      fresh(i, c) = (c == 0 ? offset : 0.0) + rng.normal();
    }
  }
  const Matrix placed =
      umap_transform(reference, ref_embedding, fresh, config);
  ASSERT_EQ(placed.rows(), 8u);
  ASSERT_EQ(placed.cols(), 2u);

  const auto centroid = [&](std::size_t start) {
    double cx = 0, cy = 0;
    for (std::size_t i = start; i < start + kPer; ++i) {
      cx += ref_embedding(i, 0);
      cy += ref_embedding(i, 1);
    }
    return std::pair{cx / kPer, cy / kPer};
  };
  const auto [c0x, c0y] = centroid(0);
  const auto [c1x, c1y] = centroid(kPer);
  for (std::size_t i = 0; i < 8; ++i) {
    const double d0 = std::hypot(placed(i, 0) - c0x, placed(i, 1) - c0y);
    const double d1 = std::hypot(placed(i, 0) - c1x, placed(i, 1) - c1y);
    if (i < 4) {
      EXPECT_LT(d0, d1) << "point " << i;
    } else {
      EXPECT_LT(d1, d0) << "point " << i;
    }
  }
}

TEST(UmapTransform, ReferenceUnchangedAndDeterministic) {
  const Matrix reference = two_gaussian_clusters(25, 10.0, 33);
  UmapConfig config = fast_config();
  const Matrix ref_embedding = umap_embed(reference, config);
  const Matrix fresh = two_gaussian_clusters(3, 10.0, 34);
  const Matrix p1 = umap_transform(reference, ref_embedding, fresh, config);
  const Matrix p2 = umap_transform(reference, ref_embedding, fresh, config);
  EXPECT_EQ(Matrix::max_abs_diff(p1, p2), 0.0);
}

TEST(UmapTransform, ValidatesArguments) {
  const Matrix reference = two_gaussian_clusters(20, 5.0, 35);
  UmapConfig config = fast_config();
  const Matrix ref_embedding = umap_embed(reference, config);
  EXPECT_THROW(
      umap_transform(reference, ref_embedding, Matrix(2, 7), config),
      CheckError);
  EXPECT_THROW(
      umap_transform(reference, Matrix(3, 2), Matrix(2, 4), config),
      CheckError);
}

TEST(Umap, TooFewPointsThrows) {
  UmapConfig config = fast_config();
  config.n_neighbors = 10;
  EXPECT_THROW(umap_embed(Matrix(5, 3), config), CheckError);
}

TEST(Umap, GraphMismatchThrows) {
  const Matrix pts = two_gaussian_clusters(20, 5.0, 10);
  const KnnGraph g = exact_knn(pts, 5);
  const Matrix other(10, 4);
  EXPECT_THROW(umap_embed_graph(other, g, fast_config()), CheckError);
}

}  // namespace
}  // namespace arams::embed
