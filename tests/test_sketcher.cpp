// core::Sketcher conformance suite — every factory-registered backend must
// honor the interface contract in sketcher.hpp:
//   * factory round-trip: make_sketcher(name(), …) rebuilds the same kind
//   * batch-vs-row parity: push_batch(A) ≡ append per row
//   * bitwise determinism under a fixed seed
//   * allocation-free steady-state ingest
//   * sketch() idempotence
//   * the uniform empty-state contract (dim 0 / empty sketch / checked basis)
//
// The allocation check overrides global operator new/delete in this
// translation unit only (each gtest binary is its own process, so the
// override is hermetic) — same pattern as test_distance.cpp.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "core/sketcher.hpp"
#include "data/beam_profile.hpp"
#include "data/diffraction.hpp"
#include "data/synthetic.hpp"
#include "image/image.hpp"
#include "image/preprocess.hpp"
#include "linalg/blas.hpp"
#include "linalg/norms.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace {
std::atomic<long> g_heap_allocations{0};
}  // namespace

void* operator new(std::size_t n) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t n, std::align_val_t a) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(a), n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace arams::core {
namespace {

using linalg::Matrix;

Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  Matrix m(r, c);
  Rng rng(seed);
  for (std::size_t i = 0; i < r; ++i) rng.fill_normal(m.row(i));
  return m;
}

/// Same draw as random_matrix, narrowed once — the fp32 lane's input. Pair
/// with widen() so both lanes start from the identical float values.
linalg::MatrixF random_matrix_f32(std::size_t r, std::size_t c,
                                  std::uint64_t seed) {
  const Matrix wide = random_matrix(r, c, seed);
  linalg::MatrixF m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    const auto src = wide.row(i);
    auto dst = m.row(i);
    for (std::size_t j = 0; j < c; ++j) {
      dst[j] = static_cast<float>(src[j]);
    }
  }
  return m;
}

/// Backend config for the strict conformance properties. Two deliberate
/// accommodations, both documented in sketcher.hpp:
///  * arams runs with sampling and rank adaptation off — the priority
///    sampler decides per *batch*, so row-wise and batched ingest see
///    different sample draws by design, and adaptation re-sizes scratch.
///  * rangefinder's re-orthogonalization cadence is pushed past the test
///    window — the QR step is batch-count-triggered (ingest-granularity
///    dependent) and allocates by design.
SketcherConfig conformance_config(const std::string& name, std::size_t ell,
                                  std::uint64_t seed) {
  SketcherConfig config;
  config.backend = name;
  config.ell = ell;
  config.seed = seed;
  config.arams.ell = ell;
  config.arams.seed = seed;
  config.arams.use_sampling = false;
  config.arams.rank_adaptive = false;
  config.rf_reorth_every = 1u << 20;
  return config;
}

// ------------------------------------------------------------- the factory

TEST(SketcherFactory, RoundTripsEveryRegisteredName) {
  const auto names = registered_sketchers();
  EXPECT_EQ(names.size(), 7u);
  for (const auto& name : names) {
    EXPECT_TRUE(sketcher_registered(name));
    EXPECT_FALSE(sketcher_description(name).empty());
    const auto sketcher = make_sketcher(name, 8, 3);
    ASSERT_NE(sketcher, nullptr);
    // name() must be the canonical factory name, so it round-trips.
    EXPECT_EQ(sketcher->name(), name);
    EXPECT_EQ(make_sketcher(sketcher->name(), 8, 3)->name(), name);
  }
  EXPECT_FALSE(sketcher_registered("typo"));
  EXPECT_THROW(make_sketcher("typo", 8, 3), CheckError);
  EXPECT_THROW(sketcher_description("typo"), CheckError);
}

TEST(SketcherFactory, AliasesBuildCanonicalBackends) {
  EXPECT_TRUE(sketcher_registered("gaussian-projection"));
  EXPECT_EQ(make_sketcher("gaussian-projection", 8, 3)->name(), "gaussian");
  EXPECT_EQ(make_sketcher("count-sketch", 8, 3)->name(), "countsketch");
  EXPECT_EQ(make_sketcher("norm-sampling", 8, 3)->name(), "normsample");
}

TEST(SketcherFactory, UnknownBackendErrorListsRegistry) {
  SketcherConfig config;
  config.backend = "nope";
  const auto errors = config.validate();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("unknown sketcher backend 'nope'"),
            std::string::npos);
  // The message should teach the registry, not just reject.
  EXPECT_NE(errors[0].find("rangefinder"), std::string::npos);
  EXPECT_THROW(make_sketcher(config), CheckError);
}

TEST(SketcherFactory, AramsErrorsArePrefixed) {
  SketcherConfig config;
  config.backend = "arams";
  config.arams.beta = -0.5;
  const auto errors = config.validate();
  ASSERT_FALSE(errors.empty());
  EXPECT_EQ(errors[0].rfind("arams: ", 0), 0u) << errors[0];
}

TEST(SketcherFactory, RangefinderKnobsValidated) {
  SketcherConfig config;
  config.backend = "rangefinder";
  config.rf_oversample = 0;
  config.rf_reorth_every = 0;
  EXPECT_EQ(config.validate().size(), 2u);
  EXPECT_THROW(make_sketcher(config), CheckError);
}

// ------------------------------------------------- conformance properties

class SketcherConformance : public ::testing::TestWithParam<std::string> {};

TEST_P(SketcherConformance, EmptyStateContract) {
  const auto sketcher = make_sketcher(conformance_config(GetParam(), 8, 5));
  EXPECT_EQ(sketcher->dim(), 0u);
  EXPECT_EQ(sketcher->stats().rows_processed, 0);
  EXPECT_EQ(sketcher->sketch().rows(), 0u);  // never throws when empty
  try {
    sketcher->basis(4);
    FAIL() << GetParam() << ": basis() on an empty sketch must throw";
  } catch (const CheckError& e) {
    // The uniform message, identical across backends.
    EXPECT_NE(std::string(e.what()).find("basis of an empty sketch"),
              std::string::npos)
        << GetParam();
  }
}

TEST_P(SketcherConformance, BatchAndRowIngestAgree) {
  const Matrix a = random_matrix(60, 18, 6);
  const auto batched = make_sketcher(conformance_config(GetParam(), 8, 5));
  const auto rowwise = make_sketcher(conformance_config(GetParam(), 8, 5));
  batched->push_batch(a);
  for (std::size_t r = 0; r < a.rows(); ++r) rowwise->append(a.row(r));

  const Matrix sb = batched->sketch();
  const Matrix sr = rowwise->sketch();
  ASSERT_EQ(sb.rows(), sr.rows()) << GetParam();
  ASSERT_EQ(sb.cols(), sr.cols()) << GetParam();
  EXPECT_EQ(batched->stats().rows_processed, rowwise->stats().rows_processed);
  // gaussian accumulates one GEMM per batch and rangefinder one Y-update
  // per batch, so row/batch sums associate differently — parity is exact
  // up to floating-point summation order. Everything else is bitwise.
  const bool exact = GetParam() != "gaussian" && GetParam() != "rangefinder";
  const double tol =
      exact ? 0.0 : 1e-9 * (1.0 + linalg::frobenius_norm(sb));
  EXPECT_LE(Matrix::max_abs_diff(sb, sr), tol) << GetParam();
}

TEST_P(SketcherConformance, DeterministicUnderFixedSeed) {
  // Stock factory config (for arams that means sampling + adaptation ON):
  // identical seed and ingest pattern must reproduce the sketch bitwise.
  const Matrix a = random_matrix(90, 16, 7);
  const auto first = make_sketcher(GetParam(), 12, 77);
  const auto second = make_sketcher(GetParam(), 12, 77);
  for (std::size_t r0 = 0; r0 < a.rows(); r0 += 30) {
    first->push_batch(a.slice_rows(r0, r0 + 30));
    second->push_batch(a.slice_rows(r0, r0 + 30));
  }
  const Matrix s1 = first->sketch();
  const Matrix s2 = second->sketch();
  ASSERT_EQ(s1.rows(), s2.rows()) << GetParam();
  EXPECT_EQ(Matrix::max_abs_diff(s1, s2), 0.0) << GetParam();
  EXPECT_EQ(first->current_ell(), second->current_ell());
}

TEST_P(SketcherConformance, SketchIsIdempotent) {
  const Matrix a = random_matrix(50, 14, 8);
  const auto sketcher = make_sketcher(conformance_config(GetParam(), 8, 5));
  sketcher->push_batch(a);
  const Matrix s1 = sketcher->sketch();
  const Matrix s2 = sketcher->sketch();
  ASSERT_EQ(s1.rows(), s2.rows()) << GetParam();
  ASSERT_EQ(s1.cols(), s2.cols()) << GetParam();
  EXPECT_EQ(Matrix::max_abs_diff(s1, s2), 0.0) << GetParam();
  EXPECT_EQ(sketcher->stats().rows_processed, 50);
}

TEST_P(SketcherConformance, SteadyStateIngestIsAllocationFree) {
  // Shapes stay tiny so the GEMM cores run serially (no pool dispatch).
  const auto sketcher = make_sketcher(conformance_config(GetParam(), 6, 5));
  std::vector<Matrix> batches;
  batches.reserve(24);
  for (std::size_t i = 0; i < 24; ++i) {
    batches.push_back(random_matrix(4, 12, 100 + i));
  }
  // Warm-up fixes d, grows every scratch buffer and (for fd/arams/isvd)
  // passes through at least one shrink cycle.
  for (std::size_t i = 0; i < 16; ++i) sketcher->push_batch(batches[i]);

  const long before = g_heap_allocations.load(std::memory_order_relaxed);
  for (std::size_t i = 16; i < 24; ++i) sketcher->push_batch(batches[i]);
  const long after = g_heap_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0) << GetParam();
}

TEST_P(SketcherConformance, BasisIsRowOrthonormal) {
  data::SyntheticConfig dc;
  dc.n = 200;
  dc.d = 20;
  dc.spectrum.kind = data::DecayKind::kExponential;
  dc.spectrum.count = 8;
  dc.spectrum.rate = 0.4;
  Rng rng(9);
  const Matrix a = data::make_low_rank(dc, rng);
  const auto sketcher = make_sketcher(conformance_config(GetParam(), 12, 5));
  sketcher->push_batch(a);
  ASSERT_GT(sketcher->dim(), 0u);

  const Matrix q = sketcher->basis(4);
  ASSERT_LE(q.rows(), 4u) << GetParam();
  ASSERT_EQ(q.cols(), 20u) << GetParam();
  ASSERT_GE(q.rows(), 1u) << GetParam();
  for (std::size_t i = 0; i < q.rows(); ++i) {
    for (std::size_t j = 0; j < q.rows(); ++j) {
      const double dot = linalg::dot(q.row(i), q.row(j));
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-8)
          << GetParam() << " rows " << i << "," << j;
    }
  }
}

TEST_P(SketcherConformance, ReasonableCovarianceOnLowRankData) {
  data::SyntheticConfig dc;
  dc.n = 300;
  dc.d = 30;
  dc.spectrum.kind = data::DecayKind::kExponential;
  dc.spectrum.count = 10;
  dc.spectrum.rate = 0.5;
  Rng rng(10);
  const Matrix a = data::make_low_rank(dc, rng);
  const auto sketcher = make_sketcher(GetParam(), 24, 11);
  sketcher->push_batch(a);
  const Matrix b = sketcher->sketch();
  Rng power(12);
  EXPECT_LT(linalg::covariance_error_relative(a, b, power, 80), 0.6)
      << GetParam();
}

TEST_P(SketcherConformance, StatsFlowIntoStageReport) {
  const auto sketcher = make_sketcher(conformance_config(GetParam(), 8, 5));
  sketcher->push_batch(random_matrix(40, 10, 13));
  obs::StageReport report;
  sketcher->report(report);
  EXPECT_EQ(report.counter("rows_processed"), 40);
}

// -------------------------------------------------- the fp32 ingest lane

TEST_P(SketcherConformance, F32IngestMatchesWidenedIngestBitwise) {
  // Design contract of the mixed-precision lane: pushing fp32 rows is
  // bitwise identical to widening the batch up front, because every
  // accumulation runs in fp64 on the identical widened values (native
  // overrides widen per panel/row, the default shim widens per batch).
  const linalg::MatrixF a32 = random_matrix_f32(60, 18, 14);
  Matrix a64;
  linalg::widen(linalg::MatrixViewF(a32), a64);
  const auto f32 = make_sketcher(conformance_config(GetParam(), 8, 5));
  const auto f64 = make_sketcher(conformance_config(GetParam(), 8, 5));
  f32->push_batch(linalg::MatrixViewF(a32));
  f64->push_batch(a64);
  const Matrix s32 = f32->sketch();
  const Matrix s64 = f64->sketch();
  ASSERT_EQ(s32.rows(), s64.rows()) << GetParam();
  ASSERT_EQ(s32.cols(), s64.cols()) << GetParam();
  EXPECT_EQ(Matrix::max_abs_diff(s32, s64), 0.0) << GetParam();
  EXPECT_EQ(f32->stats().rows_processed, f64->stats().rows_processed);
}

TEST_P(SketcherConformance, F32IngestTracksWidenedIngestUnderStockConfig) {
  // Stock factory config — for arams that switches priority sampling and
  // rank adaptation ON. The sampler's fp32 weight reduction may differ
  // from the widened stream's in the last ulp (documented in
  // priority_sampler.cpp), so rescaled survivor rows are equal-to-rounding
  // rather than bitwise; every other backend stays exactly bitwise.
  const linalg::MatrixF a32 = random_matrix_f32(90, 16, 15);
  Matrix a64;
  linalg::widen(linalg::MatrixViewF(a32), a64);
  const auto f32 = make_sketcher(GetParam(), 12, 77);
  const auto f64 = make_sketcher(GetParam(), 12, 77);
  for (std::size_t r0 = 0; r0 < a32.rows(); r0 += 30) {
    f32->push_batch(linalg::MatrixViewF::rows_of(a32, r0, r0 + 30));
    f64->push_batch(a64.slice_rows(r0, r0 + 30));
  }
  const Matrix s32 = f32->sketch();
  const Matrix s64 = f64->sketch();
  ASSERT_EQ(s32.rows(), s64.rows()) << GetParam();
  const double tol =
      GetParam() == "arams" ? 1e-12 * (1.0 + linalg::frobenius_norm(s64))
                            : 0.0;
  EXPECT_LE(Matrix::max_abs_diff(s32, s64), tol) << GetParam();
  EXPECT_EQ(f32->current_ell(), f64->current_ell()) << GetParam();
}

TEST_P(SketcherConformance, F32SteadyStateIngestIsAllocationFree) {
  // fp32 twin of SteadyStateIngestIsAllocationFree: the widening shim's
  // grow-only workspace (and every native fp32 override) must go quiet
  // once the batch shape has been seen.
  const auto sketcher = make_sketcher(conformance_config(GetParam(), 6, 5));
  std::vector<linalg::MatrixF> batches;
  batches.reserve(24);
  for (std::size_t i = 0; i < 24; ++i) {
    batches.push_back(random_matrix_f32(4, 12, 200 + i));
  }
  for (std::size_t i = 0; i < 16; ++i) {
    sketcher->push_batch(linalg::MatrixViewF(batches[i]));
  }

  const long before = g_heap_allocations.load(std::memory_order_relaxed);
  for (std::size_t i = 16; i < 24; ++i) {
    sketcher->push_batch(linalg::MatrixViewF(batches[i]));
  }
  const long after = g_heap_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0) << GetParam();
}

TEST_P(SketcherConformance, F32LaneCountersFlowIntoStageReport) {
  const auto sketcher = make_sketcher(conformance_config(GetParam(), 8, 5));
  sketcher->push_batch(linalg::MatrixViewF(random_matrix_f32(40, 10, 13)));
  EXPECT_EQ(sketcher->rows_ingested_f32(), 40);
  obs::StageReport report;
  sketcher->report(report);
  EXPECT_EQ(report.counter("rows_processed"), 40);
  EXPECT_EQ(report.counter("rows_ingested_f32"), 40);

  // A pure-fp64 run must not grow the lane counter.
  const auto classic = make_sketcher(conformance_config(GetParam(), 8, 5));
  classic->push_batch(random_matrix(40, 10, 13));
  EXPECT_EQ(classic->rows_ingested_f32(), 0);
  obs::StageReport classic_report;
  classic->report(classic_report);
  EXPECT_EQ(classic_report.counter("rows_ingested_f32"), 0);
}

/// The ISSUE's pinned accuracy budget: sketching frames preprocessed in
/// fp32 must land within 1e-5 (relative) of the fp64-reference sketch.
/// Compared through the Gram matrix BᵀB — the covariance estimate the
/// sketch exists to carry — which is invariant to the left-rotation slack
/// that SVD-based backends have on near-degenerate directions.
void expect_f32_drift_within_bound(const std::string& backend,
                                   const std::vector<image::ImageF>& frames) {
  const image::PreprocessConfig prep;  // stock threshold + center + normalize
  const Matrix rows64 =
      image::images_to_matrix(image::preprocess_batch(frames, prep));
  std::vector<image::ImageF32> narrowed;
  narrowed.reserve(frames.size());
  for (const auto& frame : frames) narrowed.push_back(image::narrow(frame));
  const linalg::MatrixF rows32 =
      image::images_to_matrix(image::preprocess_batch(narrowed, prep));

  const auto f64 = make_sketcher(conformance_config(backend, 12, 5));
  const auto f32 = make_sketcher(conformance_config(backend, 12, 5));
  f64->push_batch(rows64);
  f32->push_batch(linalg::MatrixViewF(rows32));
  const Matrix s64 = f64->sketch();
  const Matrix s32 = f32->sketch();
  ASSERT_EQ(s32.rows(), s64.rows()) << backend;
  ASSERT_EQ(s32.cols(), s64.cols()) << backend;
  const Matrix g64 = linalg::gram_cols(s64);
  const Matrix g32 = linalg::gram_cols(s32);
  EXPECT_LE(Matrix::max_abs_diff(g32, g64),
            1e-5 * (1.0 + linalg::frobenius_norm(g64)))
      << backend;
}

TEST_P(SketcherConformance, F32DriftWithinBoundOnBeamProfiles) {
  data::BeamProfileConfig beam;
  beam.height = 32;
  beam.width = 32;
  Rng rng(16);
  std::vector<image::ImageF> frames;
  frames.reserve(48);
  for (auto& sample : data::generate_beam_profiles(beam, 48, rng)) {
    frames.push_back(std::move(sample.frame));
  }
  expect_f32_drift_within_bound(GetParam(), frames);
}

TEST_P(SketcherConformance, F32DriftWithinBoundOnDiffractionFrames) {
  data::DiffractionConfig diff;
  diff.height = 32;
  diff.width = 32;
  const data::DiffractionGenerator generator(diff);
  Rng rng(17);
  std::vector<image::ImageF> frames;
  frames.reserve(48);
  for (auto& sample : generator.generate_batch(48, rng)) {
    frames.push_back(std::move(sample.frame));
  }
  expect_f32_drift_within_bound(GetParam(), frames);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, SketcherConformance,
                         ::testing::ValuesIn(registered_sketchers()));

// ------------------------------------------------------------- rangefinder

TEST(RangeFinder, AccurateOnDecayingSpectrum) {
  data::SyntheticConfig dc;
  dc.n = 500;
  dc.d = 48;
  dc.spectrum.kind = data::DecayKind::kExponential;
  dc.spectrum.count = 24;
  dc.spectrum.rate = 0.3;
  Rng rng(20);
  const Matrix a = data::make_low_rank(dc, rng);

  RangeFinderSketch sketcher(16, 21);
  for (std::size_t r0 = 0; r0 < a.rows(); r0 += 50) {
    sketcher.push_batch(a.slice_rows(r0, r0 + 50));
  }
  const Matrix b = sketcher.sketch();
  EXPECT_LE(b.rows(), 16u);
  Rng power(22);
  EXPECT_LT(linalg::covariance_error_relative(a, b, power, 80), 0.05);
}

TEST(RangeFinder, ReorthogonalizationPreservesTheApproximation) {
  // The Nyström approximation is invariant under Ω → Ω·M for invertible M
  // (in exact arithmetic), so an aggressive QR cadence must agree with no
  // re-orthogonalization at all up to rounding.
  const Matrix a = random_matrix(240, 24, 23);
  RangeFinderSketch eager(8, 31, 8, /*reorth_every=*/1);
  RangeFinderSketch lazy(8, 31, 8, /*reorth_every=*/1u << 20);
  for (std::size_t r0 = 0; r0 < a.rows(); r0 += 20) {
    eager.push_batch(a.slice_rows(r0, r0 + 20));
    lazy.push_batch(a.slice_rows(r0, r0 + 20));
  }
  const Matrix be = eager.sketch();
  const Matrix bl = lazy.sketch();
  ASSERT_EQ(be.rows(), bl.rows());
  // Compare the Gram matrices — the sketches themselves are only defined
  // up to a rotation of the retained subspace.
  const Matrix ge = linalg::gram_cols(be);
  const Matrix gl = linalg::gram_cols(bl);
  EXPECT_LT(Matrix::max_abs_diff(ge, gl),
            1e-6 * (1.0 + linalg::frobenius_norm(ge)));
}

TEST(RangeFinder, ProbeCountClampsToDimension) {
  // d < ℓ + oversample: the probe count must clamp to d and still work.
  RangeFinderSketch sketcher(8, 33, 8);
  sketcher.push_batch(random_matrix(40, 5, 24));
  const Matrix b = sketcher.sketch();
  EXPECT_EQ(b.cols(), 5u);
  EXPECT_LE(b.rows(), 8u);
}

}  // namespace
}  // namespace arams::core
