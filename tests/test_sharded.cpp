// core::ShardedSketcher — N-way concurrent ingest + pool-executed tree
// merge. The load-bearing properties:
//   * factory round-trip of the "sharded:<inner>" spelling and the
//     SketcherConfig::shards knob, with teaching validation messages
//   * round-robin partitioning is a pure function of arrival order, so the
//     merged sketch is bitwise identical at any pool size (including no
//     pool at all)
//   * a 1-shard wrapper is bitwise the plain backend
//   * the FD error guarantee survives sharding on the LCLS-like workloads
//   * steady-state ingest is allocation-free in inline mode
//   * shard-row accounting (gauges + report) and the sketch()-time merge
//     stats (measured + modeled makespans) are published
//
// The allocation check overrides global operator new/delete in this
// translation unit only — same pattern as test_sketcher.cpp.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "core/sharded.hpp"
#include "core/sketcher.hpp"
#include "data/beam_profile.hpp"
#include "data/diffraction.hpp"
#include "image/image.hpp"
#include "linalg/blas.hpp"
#include "linalg/norms.hpp"
#include "obs/metrics.hpp"
#include "obs/stage_report.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace {
std::atomic<long> g_heap_allocations{0};
}  // namespace

void* operator new(std::size_t n) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t n, std::align_val_t a) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(a), n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace arams::core {
namespace {

using linalg::Matrix;

Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  Matrix m(r, c);
  Rng rng(seed);
  for (std::size_t i = 0; i < r; ++i) rng.fill_normal(m.row(i));
  return m;
}

linalg::MatrixF random_matrix_f32(std::size_t r, std::size_t c,
                                  std::uint64_t seed) {
  const Matrix wide = random_matrix(r, c, seed);
  linalg::MatrixF m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    const auto src = wide.row(i);
    auto dst = m.row(i);
    for (std::size_t j = 0; j < c; ++j) {
      dst[j] = static_cast<float>(src[j]);
    }
  }
  return m;
}

SketcherConfig fd_config(std::size_t ell, std::uint64_t seed) {
  SketcherConfig config;
  config.backend = "fd";
  config.ell = ell;
  config.seed = seed;
  return config;
}

/// Pushes `a` in fixed-size batches — the DAQ-shaped ingest pattern.
void stream_batches(Sketcher& sketcher, const Matrix& a, std::size_t batch) {
  for (std::size_t r0 = 0; r0 < a.rows(); r0 += batch) {
    sketcher.push_batch(a.slice_rows(r0, std::min(a.rows(), r0 + batch)));
  }
}

// ------------------------------------------------------------- the factory

TEST(ShardedFactory, RoundTripsTheShardedSpelling) {
  EXPECT_TRUE(sketcher_registered("sharded:fd"));
  EXPECT_TRUE(sketcher_registered("sharded:arams"));
  EXPECT_FALSE(sketcher_registered("sharded:nope"));
  EXPECT_FALSE(sketcher_registered("sharded:sharded:fd"));
  EXPECT_NE(sketcher_description("sharded:fd").find("sharded"),
            std::string::npos);

  const auto sketcher = make_sketcher("sharded:fd", 8, 3);
  ASSERT_NE(sketcher, nullptr);
  EXPECT_EQ(sketcher->name(), "sharded:fd");
  EXPECT_EQ(make_sketcher(sketcher->name(), 8, 3)->name(), "sharded:fd");
}

TEST(ShardedFactory, ShardsKnobWrapsAnyBackend) {
  SketcherConfig config = fd_config(8, 3);
  config.shards = 4;
  const auto sketcher = make_sketcher(config);
  EXPECT_EQ(sketcher->name(), "sharded:fd");
  const auto* sharded = dynamic_cast<const ShardedSketcher*>(sketcher.get());
  ASSERT_NE(sharded, nullptr);
  EXPECT_EQ(sharded->shard_count(), 4u);
}

TEST(ShardedFactory, ValidationTeachesTheRules) {
  SketcherConfig config = fd_config(8, 3);
  config.shards = 0;
  auto errors = config.validate();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("shards must be >= 1, got 0"), std::string::npos);

  config = fd_config(8, 3);
  config.backend = "sharded:nope";
  errors = config.validate();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("sharded: unknown inner backend 'nope'"),
            std::string::npos);
  // The message should teach the registry, not just reject.
  EXPECT_NE(errors[0].find("rangefinder"), std::string::npos);
  EXPECT_THROW(make_sketcher(config), CheckError);

  config.backend = "sharded:sharded:fd";
  errors = config.validate();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("nested sharded backends are not supported"),
            std::string::npos);

  // Inner-config problems surface with the sharded: prefix.
  config = fd_config(8, 3);
  config.backend = "sharded:rangefinder";
  config.rf_oversample = 0;
  errors = config.validate();
  ASSERT_FALSE(errors.empty());
  EXPECT_EQ(errors[0].rfind("sharded: ", 0), 0u) << errors[0];

  EXPECT_THROW(ShardedSketcher(fd_config(8, 3), 0, nullptr), CheckError);
}

// ----------------------------------------------------------- partitioning

TEST(Sharded, OneShardIsBitwiseThePlainBackend) {
  const Matrix a = random_matrix(70, 12, 5);
  ShardedSketcher sharded(fd_config(8, 5), 1, nullptr);
  const auto plain = make_sketcher(fd_config(8, 5));
  stream_batches(sharded, a, 20);
  stream_batches(*plain, a, 20);
  const Matrix s1 = sharded.sketch();
  const Matrix s2 = plain->sketch();
  ASSERT_EQ(s1.rows(), s2.rows());
  EXPECT_EQ(Matrix::max_abs_diff(s1, s2), 0.0);
  EXPECT_EQ(sharded.stats().rows_processed, 70);
}

TEST(Sharded, RoundRobinFollowsTheLifetimeCursor) {
  ShardedSketcher sharded(fd_config(8, 5), 4, nullptr);
  sharded.push_batch(random_matrix(10, 6, 7));
  // Rows 0..9 → shards 0,1,2,3,0,1,2,3,0,1.
  EXPECT_EQ(sharded.shard_rows(0), 3);
  EXPECT_EQ(sharded.shard_rows(1), 3);
  EXPECT_EQ(sharded.shard_rows(2), 2);
  EXPECT_EQ(sharded.shard_rows(3), 2);
  // The next batch resumes at row 10 → shard 2, not at shard 0.
  sharded.push_batch(random_matrix(6, 6, 8));
  EXPECT_EQ(sharded.shard_rows(0), 4);
  EXPECT_EQ(sharded.shard_rows(1), 4);
  EXPECT_EQ(sharded.shard_rows(2), 4);
  EXPECT_EQ(sharded.shard_rows(3), 4);
  // Lifetime row routing is also published as gauges.
  EXPECT_EQ(obs::metrics().gauge("sketch.shard_rows.0").value(), 4.0);
  EXPECT_EQ(obs::metrics().gauge("sketch.shard_rows.3").value(), 4.0);
}

TEST(Sharded, BitwiseIdenticalAtAnyPoolSize) {
  // The determinism contract: scheduling decides only *when* a shard or
  // merge group runs, never what it computes. ARAMS_POOL_THREADS is read
  // once per process, so the pool sizes are constructed explicitly here.
  const Matrix a = random_matrix(96, 14, 9);
  ShardedSketcher inline_run(fd_config(8, 5), 4, nullptr);
  stream_batches(inline_run, a, 32);
  const Matrix expected = inline_run.sketch();
  ASSERT_GT(expected.rows(), 0u);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4},
                                    std::size_t{0} /* hardware */}) {
    parallel::ThreadPool pool(threads);
    ShardedSketcher pooled(fd_config(8, 5), 4, &pool);
    stream_batches(pooled, a, 32);
    const Matrix got = pooled.sketch();
    ASSERT_EQ(got.rows(), expected.rows()) << "threads=" << threads;
    EXPECT_EQ(Matrix::max_abs_diff(got, expected), 0.0)
        << "threads=" << threads;
    EXPECT_EQ(pooled.stats().rows_processed, 96);
  }
}

TEST(Sharded, F32IngestMatchesWidenedIngestBitwise) {
  const linalg::MatrixF a32 = random_matrix_f32(60, 18, 14);
  Matrix a64;
  linalg::widen(linalg::MatrixViewF(a32), a64);
  ShardedSketcher f32(fd_config(8, 5), 4, nullptr);
  ShardedSketcher f64(fd_config(8, 5), 4, nullptr);
  f32.push_batch(linalg::MatrixViewF(a32));
  f64.push_batch(a64);
  const Matrix s32 = f32.sketch();
  const Matrix s64 = f64.sketch();
  ASSERT_EQ(s32.rows(), s64.rows());
  EXPECT_EQ(Matrix::max_abs_diff(s32, s64), 0.0);
  // The lane counter lands on the wrapper; row routing is unchanged.
  EXPECT_EQ(f32.rows_ingested_f32(), 60);
  EXPECT_EQ(f32.shard_rows(0), 15);
  EXPECT_EQ(f32.stats().rows_processed, 60);
}

// ------------------------------------------------------- error guarantee

/// Relative covariance error of sharded-vs-single FD on one workload: the
/// sharded sketch must stay within the merge bound (2× the one-pass
/// ‖A‖²_F/ℓ mass bound, see test_merge.cpp) and track the single-instance
/// error closely.
void expect_sharded_error_parity(const Matrix& rows, std::size_t ell) {
  const auto single = make_sketcher(fd_config(ell, 5));
  single->push_batch(rows);
  Rng p1(42);
  const double err_single =
      linalg::covariance_error(rows, single->sketch(), p1, 150);
  const double bound = linalg::frobenius_norm_squared(rows) /
                       static_cast<double>(ell);
  for (const std::size_t shards : {2u, 4u, 8u}) {
    ShardedSketcher sharded(fd_config(ell, 5), shards, nullptr);
    stream_batches(sharded, rows, 32);
    const Matrix merged = sharded.sketch();
    EXPECT_LE(merged.rows(), sharded.current_ell()) << shards << " shards";
    Rng p2(42);
    const double err = linalg::covariance_error(rows, merged, p2, 150);
    EXPECT_LE(err, 2.0 * bound) << shards << " shards";
    EXPECT_LE(err, 4.0 * err_single + 1e-9) << shards << " shards";
  }
}

TEST(Sharded, KeepsFdErrorBoundOnBeamProfiles) {
  data::BeamProfileConfig config;
  config.height = 16;
  config.width = 16;
  Rng rng(11);
  std::vector<image::ImageF> frames;
  frames.reserve(96);
  for (std::size_t i = 0; i < 96; ++i) {
    frames.push_back(data::generate_beam_profile(config, rng).frame);
  }
  expect_sharded_error_parity(image::images_to_matrix(frames), 12);
}

TEST(Sharded, KeepsFdErrorBoundOnDiffractionRings) {
  data::DiffractionConfig config;
  config.height = 16;
  config.width = 16;
  const data::DiffractionGenerator generator(config);
  Rng rng(12);
  std::vector<image::ImageF> frames;
  frames.reserve(96);
  for (std::size_t i = 0; i < 96; ++i) {
    frames.push_back(generator.generate(rng).frame);
  }
  expect_sharded_error_parity(image::images_to_matrix(frames), 12);
}

// ------------------------------------------------------------ degenerates

TEST(Sharded, EmptyStateContract) {
  ShardedSketcher sharded(fd_config(8, 5), 4, nullptr);
  EXPECT_EQ(sharded.name(), "sharded:fd");
  EXPECT_EQ(sharded.dim(), 0u);
  EXPECT_EQ(sharded.stats().rows_processed, 0);
  EXPECT_EQ(sharded.sketch().rows(), 0u);  // never throws when empty
  try {
    sharded.basis(4);
    FAIL() << "basis() on an empty sharded sketch must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("basis of an empty sketch"),
              std::string::npos);
  }
  // Merge stats stay zeroed until a sketch()-time merge actually runs.
  EXPECT_EQ(sharded.last_merge_stats().merge_ops, 0);
}

TEST(Sharded, EmptyBatchIsANoOp) {
  ShardedSketcher sharded(fd_config(8, 5), 4, nullptr);
  sharded.push_batch(Matrix());
  EXPECT_EQ(sharded.dim(), 0u);
  sharded.push_batch(random_matrix(9, 6, 13));
  sharded.push_batch(Matrix(0, 6));
  // The cursor must not advance on empty batches: shard 1 is next.
  sharded.push_batch(random_matrix(1, 6, 14));
  EXPECT_EQ(sharded.shard_rows(0), 3);
  EXPECT_EQ(sharded.shard_rows(1), 3);
  EXPECT_EQ(sharded.shard_rows(2), 2);
  EXPECT_EQ(sharded.shard_rows(3), 2);
}

TEST(Sharded, FewerRowsThanShards) {
  ShardedSketcher sharded(fd_config(8, 5), 8, nullptr);
  const Matrix a = random_matrix(3, 10, 15);
  sharded.push_batch(a);
  EXPECT_EQ(sharded.shard_rows(0), 1);
  EXPECT_EQ(sharded.shard_rows(2), 1);
  EXPECT_EQ(sharded.shard_rows(3), 0);
  const Matrix s = sharded.sketch();
  EXPECT_GT(s.rows(), 0u);
  EXPECT_EQ(s.cols(), 10u);
  EXPECT_EQ(sharded.stats().rows_processed, 3);
}

// ------------------------------------------------------------ allocation

TEST(Sharded, SteadyStateIngestIsAllocationFreeInline) {
  // pool == nullptr is the strictly allocation-free mode (pool dispatch
  // costs O(shards) control allocations; inline ingest costs none once
  // every gather arena and inner scratch buffer has grown to shape).
  ShardedSketcher sharded(fd_config(6, 5), 4, nullptr);
  std::vector<Matrix> batches;
  batches.reserve(24);
  for (std::size_t i = 0; i < 24; ++i) {
    batches.push_back(random_matrix(8, 12, 100 + i));
  }
  for (std::size_t i = 0; i < 16; ++i) sharded.push_batch(batches[i]);

  const long before = g_heap_allocations.load(std::memory_order_relaxed);
  for (std::size_t i = 16; i < 24; ++i) sharded.push_batch(batches[i]);
  const long after = g_heap_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0);
}

// ------------------------------------------------------------- reporting

TEST(Sharded, ReportCarriesShardAndMergeKeys) {
  ShardedSketcher sharded(fd_config(8, 5), 4, nullptr);
  stream_batches(sharded, random_matrix(64, 10, 16), 16);
  const Matrix merged = sharded.sketch();
  ASSERT_GT(merged.rows(), 0u);

  const MergeStats& stats = sharded.last_merge_stats();
  EXPECT_EQ(stats.merge_ops, 3);  // 4 shard sketches → binary tree
  EXPECT_EQ(stats.levels, 2);
  EXPECT_GT(stats.critical_path_seconds_measured, 0.0);
  EXPECT_GT(stats.critical_path_seconds_modeled, 0.0);
  // Legacy accessor semantics: the plain field *is* the modeled makespan.
  EXPECT_EQ(stats.critical_path_seconds, stats.critical_path_seconds_modeled);
  // Inline execution never dispatches a merge group to a pool.
  EXPECT_EQ(stats.parallel_groups, 0);

  obs::StageReport report;
  sharded.report(report);
  EXPECT_EQ(report.counter("shards"), 4);
  EXPECT_EQ(report.counter("rows_processed"), 64);
  EXPECT_EQ(report.counter("merge_ops"), 3);
  EXPECT_EQ(report.seconds("merge_critical_path_measured"),
            stats.critical_path_seconds_measured);
}

TEST(Sharded, PooledMergeDispatchesGroups) {
  parallel::ThreadPool pool(4);
  ShardedSketcher sharded(fd_config(8, 5), 8, &pool);
  stream_batches(sharded, random_matrix(96, 10, 17), 24);
  const Matrix merged = sharded.sketch();
  ASSERT_GT(merged.rows(), 0u);
  // 8 sketches → levels of 4 and 2 groups dispatch; the final single
  // group runs inline (nothing to overlap with).
  EXPECT_EQ(sharded.last_merge_stats().parallel_groups, 6);
}

}  // namespace
}  // namespace arams::core
