// Detector calibration: pedestal subtraction, common-mode correction,
// dead/hot pixel masking from running statistics.

#include <gtest/gtest.h>

#include <cmath>

#include "image/calibration.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace arams::image {
namespace {

TEST(Pedestal, SubtractsAndClampsAtZero) {
  ImageF frame(2, 2);
  frame.at(0, 0) = 10.0;
  frame.at(0, 1) = 1.0;
  ImageF dark(2, 2);
  dark.at(0, 0) = 3.0;
  dark.at(0, 1) = 5.0;  // pedestal above signal
  subtract_pedestal(frame, dark);
  EXPECT_DOUBLE_EQ(frame.at(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(frame.at(0, 1), 0.0);
}

TEST(Pedestal, ShapeMismatchThrows) {
  ImageF frame(2, 2);
  const ImageF dark(3, 3);
  EXPECT_THROW(subtract_pedestal(frame, dark), CheckError);
}

TEST(CommonMode, RemovesPerRowOffset) {
  // Row 0 carries a +5 common-mode offset; row 1 is clean.
  ImageF frame(2, 5);
  for (std::size_t x = 0; x < 5; ++x) {
    frame.at(0, x) = 5.0;
    frame.at(1, x) = 0.0;
  }
  frame.at(0, 2) += 100.0;  // a genuine photon on top
  common_mode_subtract(frame);
  EXPECT_DOUBLE_EQ(frame.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(frame.at(0, 2), 100.0);
  EXPECT_DOUBLE_EQ(frame.at(1, 1), 0.0);
}

TEST(CommonMode, SignalCutKeepsBrightPixelsOutOfTheMedian) {
  // A row that is mostly signal: without the cut the median would eat it.
  ImageF frame(1, 7);
  for (std::size_t x = 0; x < 4; ++x) frame.at(0, x) = 50.0;  // signal
  for (std::size_t x = 4; x < 7; ++x) frame.at(0, x) = 2.0;   // baseline
  common_mode_subtract(frame, nullptr, /*signal_cut=*/10.0);
  EXPECT_DOUBLE_EQ(frame.at(0, 0), 48.0);
  EXPECT_DOUBLE_EQ(frame.at(0, 5), 0.0);
}

TEST(CommonMode, MaskedPixelsExcludedFromEstimate) {
  ImageF frame(1, 5);
  frame.at(0, 0) = 1000.0;  // bad pixel, would skew the median
  for (std::size_t x = 1; x < 5; ++x) frame.at(0, x) = 4.0;
  PixelMask mask;
  mask.height = 1;
  mask.width = 5;
  mask.good.assign(5, true);
  mask.good[0] = false;
  common_mode_subtract(frame, &mask);
  EXPECT_DOUBLE_EQ(frame.at(0, 1), 0.0);
}

TEST(MaskFromStats, FindsDeadAndHotPixels) {
  RunningFrameStats stats;
  Rng rng(1);
  for (int i = 0; i < 60; ++i) {
    ImageF frame(8, 8);
    for (auto& p : frame.pixels()) {
      p = 10.0 + rng.normal();
    }
    frame.at(3, 3) = 0.0;     // dead: never changes
    frame.at(5, 5) = 5000.0;  // hot: always saturated
    stats.update(frame);
  }
  const PixelMask mask = mask_from_stats(stats);
  EXPECT_FALSE(mask.at(3, 3));
  EXPECT_FALSE(mask.at(5, 5));
  EXPECT_TRUE(mask.at(0, 0));
  EXPECT_EQ(mask.bad_count(), 2u);
}

TEST(MaskFromStats, NeedsTwoFrames) {
  RunningFrameStats stats;
  stats.update(ImageF(4, 4));
  EXPECT_THROW(mask_from_stats(stats), CheckError);
}

TEST(ApplyMask, ZeroesBadPixels) {
  ImageF frame(2, 2);
  frame.at(0, 0) = 7.0;
  frame.at(1, 1) = 9.0;
  PixelMask mask;
  mask.height = 2;
  mask.width = 2;
  mask.good = {false, true, true, true};
  apply_mask(frame, mask);
  EXPECT_DOUBLE_EQ(frame.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(frame.at(1, 1), 9.0);
}

TEST(Calibration, FullChainOnNoisyRun) {
  // Pedestal + common mode + mask, end to end: the calibrated frame's
  // background is near zero while the planted photon peak survives.
  Rng rng(2);
  ImageF pedestal(16, 16);
  for (auto& p : pedestal.pixels()) p = 20.0 + rng.normal();

  RunningFrameStats stats;
  for (int i = 0; i < 50; ++i) {
    ImageF dark(16, 16);
    for (std::size_t j = 0; j < dark.pixel_count(); ++j) {
      dark.pixels()[j] = pedestal.pixels()[j] + 0.5 * rng.normal();
    }
    dark.at(7, 7) = 0.0;  // dead pixel
    stats.update(dark);
  }
  const PixelMask mask = mask_from_stats(stats);
  EXPECT_FALSE(mask.at(7, 7));

  ImageF frame(16, 16);
  for (std::size_t j = 0; j < frame.pixel_count(); ++j) {
    frame.pixels()[j] = pedestal.pixels()[j] + 3.0 + 0.5 * rng.normal();
  }
  frame.at(4, 9) += 200.0;  // the photon

  subtract_pedestal(frame, stats.mean());
  common_mode_subtract(frame, &mask, /*signal_cut=*/50.0);
  apply_mask(frame, mask);

  EXPECT_GT(frame.at(4, 9), 150.0);
  double background = 0.0;
  std::size_t count = 0;
  for (std::size_t y = 0; y < 16; ++y) {
    for (std::size_t x = 0; x < 16; ++x) {
      if ((y == 4 && x == 9) || (y == 7 && x == 7)) continue;
      background += frame.at(y, x);
      ++count;
    }
  }
  EXPECT_LT(background / static_cast<double>(count), 1.5);
}

}  // namespace
}  // namespace arams::image
