// Exact t-SNE: cluster preservation, determinism, perplexity calibration.

#include <gtest/gtest.h>

#include <cmath>

#include "embed/metrics.hpp"
#include "embed/tsne.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace arams::embed {
namespace {

using linalg::Matrix;

Matrix two_clusters(std::size_t per, double separation, std::uint64_t seed) {
  Matrix pts(2 * per, 4);
  Rng rng(seed);
  for (std::size_t i = 0; i < 2 * per; ++i) {
    const double offset = (i < per) ? 0.0 : separation;
    for (std::size_t c = 0; c < 4; ++c) {
      pts(i, c) = (c == 0 ? offset : 0.0) + rng.normal();
    }
  }
  return pts;
}

TsneConfig fast_config() {
  TsneConfig config;
  config.perplexity = 12.0;
  config.n_iters = 300;
  return config;
}

TEST(Tsne, ValidatesArguments) {
  EXPECT_THROW(tsne_embed(Matrix(5, 2), fast_config()), CheckError);
  TsneConfig config = fast_config();
  config.perplexity = 30.0;
  EXPECT_THROW(tsne_embed(two_clusters(20, 5.0, 1), config), CheckError);
}

TEST(Tsne, OutputShape) {
  const Matrix pts = two_clusters(30, 8.0, 2);
  const Matrix y = tsne_embed(pts, fast_config());
  EXPECT_EQ(y.rows(), 60u);
  EXPECT_EQ(y.cols(), 2u);
}

TEST(Tsne, DeterministicGivenSeed) {
  const Matrix pts = two_clusters(25, 8.0, 3);
  const Matrix y1 = tsne_embed(pts, fast_config());
  const Matrix y2 = tsne_embed(pts, fast_config());
  EXPECT_EQ(Matrix::max_abs_diff(y1, y2), 0.0);
}

TEST(Tsne, SeparatedClustersStaySeparated) {
  constexpr std::size_t kPer = 40;
  const Matrix pts = two_clusters(kPer, 25.0, 4);
  const Matrix y = tsne_embed(pts, fast_config());
  double c0x = 0, c0y = 0, c1x = 0, c1y = 0;
  for (std::size_t i = 0; i < kPer; ++i) {
    c0x += y(i, 0);
    c0y += y(i, 1);
    c1x += y(kPer + i, 0);
    c1y += y(kPer + i, 1);
  }
  c0x /= kPer;
  c0y /= kPer;
  c1x /= kPer;
  c1y /= kPer;
  const double between = std::hypot(c1x - c0x, c1y - c0y);
  double within = 0.0;
  for (std::size_t i = 0; i < kPer; ++i) {
    within += std::hypot(y(i, 0) - c0x, y(i, 1) - c0y);
    within += std::hypot(y(kPer + i, 0) - c1x, y(kPer + i, 1) - c1y);
  }
  within /= (2.0 * kPer);
  EXPECT_GT(between, 2.0 * within);
}

TEST(Tsne, PreservesNeighborhoods) {
  const Matrix pts = two_clusters(35, 12.0, 5);
  const Matrix y = tsne_embed(pts, fast_config());
  EXPECT_GT(trustworthiness(pts, y, 8), 0.8);
}

TEST(Tsne, EmbeddingIsCentered) {
  const Matrix pts = two_clusters(30, 10.0, 6);
  const Matrix y = tsne_embed(pts, fast_config());
  for (std::size_t c = 0; c < 2; ++c) {
    double mean = 0.0;
    for (std::size_t i = 0; i < y.rows(); ++i) mean += y(i, c);
    EXPECT_NEAR(mean / static_cast<double>(y.rows()), 0.0, 1e-9);
  }
}

TEST(Tsne, NoNansOnDuplicatePoints) {
  Matrix pts(40, 3);
  Rng rng(7);
  for (std::size_t i = 0; i < 20; ++i) {
    rng.fill_normal(pts.row(i));
    pts.set_row(20 + i, pts.row(i));  // exact duplicates
  }
  const Matrix y = tsne_embed(pts, fast_config());
  for (std::size_t i = 0; i < y.rows(); ++i) {
    for (const double v : y.row(i)) {
      EXPECT_FALSE(std::isnan(v));
    }
  }
}

}  // namespace
}  // namespace arams::embed
