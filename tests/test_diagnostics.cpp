// Beam diagnostics: Welford frame stats, CUSUM drift detection, per-shot
// scalars, and the aggregated BeamDiagnostics monitor.

#include <gtest/gtest.h>

#include <cmath>

#include "data/beam_profile.hpp"
#include "stream/diagnostics.hpp"
#include "stream/source.hpp"
#include "util/check.hpp"

namespace arams::stream {
namespace {

image::ImageF constant_frame(double value, std::size_t size = 8) {
  image::ImageF img(size, size);
  for (auto& p : img.pixels()) p = value;
  return img;
}

TEST(RunningFrameStats, MeanOfConstantFrames) {
  RunningFrameStats stats;
  for (int i = 0; i < 5; ++i) {
    stats.update(constant_frame(3.0));
  }
  EXPECT_EQ(stats.count(), 5u);
  const image::ImageF mean = stats.mean();
  EXPECT_NEAR(mean.at(2, 2), 3.0, 1e-12);
  EXPECT_NEAR(stats.variance().at(2, 2), 0.0, 1e-12);
}

TEST(RunningFrameStats, VarianceMatchesTwoPointSample) {
  RunningFrameStats stats;
  stats.update(constant_frame(1.0));
  stats.update(constant_frame(3.0));
  // Sample variance of {1, 3} is 2.
  EXPECT_NEAR(stats.variance().at(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(stats.mean().at(0, 0), 2.0, 1e-12);
}

TEST(RunningFrameStats, RejectsShapeChange) {
  RunningFrameStats stats;
  stats.update(constant_frame(1.0, 8));
  EXPECT_THROW(stats.update(constant_frame(1.0, 9)), CheckError);
}

TEST(RunningFrameStats, ThrowsBeforeFirstFrame) {
  const RunningFrameStats stats;
  EXPECT_THROW(stats.mean(), CheckError);
}

TEST(Cusum, NoAlarmOnStationarySignal) {
  CusumDetector detector(50, 0.5, 8.0);
  Rng rng(1);
  int alarms = 0;
  for (int i = 0; i < 2000; ++i) {
    if (detector.update(10.0 + rng.normal())) ++alarms;
  }
  EXPECT_EQ(alarms, 0);
  EXPECT_NEAR(detector.reference_mean(), 10.0, 0.5);
  EXPECT_NEAR(detector.reference_sigma(), 1.0, 0.3);
}

TEST(Cusum, DetectsMeanShiftQuickly) {
  CusumDetector detector(50, 0.5, 8.0);
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    detector.update(rng.normal());
  }
  int first_alarm = -1;
  for (int i = 0; i < 200; ++i) {
    if (detector.update(2.0 + rng.normal())) {  // 2σ shift
      first_alarm = i;
      break;
    }
  }
  ASSERT_GE(first_alarm, 0);
  EXPECT_LT(first_alarm, 30);  // within ~threshold/(shift−slack) samples
}

TEST(Cusum, DetectsDownwardShiftToo) {
  CusumDetector detector(50, 0.5, 8.0);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) detector.update(5.0 + 0.5 * rng.normal());
  bool fired = false;
  for (int i = 0; i < 100 && !fired; ++i) {
    fired = detector.update(3.0 + 0.5 * rng.normal());
  }
  EXPECT_TRUE(fired);
  EXPECT_EQ(detector.alarm_count(), 1);
}

TEST(Cusum, ResetsAfterAlarm) {
  CusumDetector detector(10, 0.5, 4.0);
  Rng rng(4);
  for (int i = 0; i < 10; ++i) detector.update(rng.normal());
  // Force an alarm.
  while (!detector.update(10.0)) {
  }
  EXPECT_EQ(detector.positive_sum(), 0.0);
  EXPECT_EQ(detector.negative_sum(), 0.0);
}

TEST(Cusum, ValidatesParameters) {
  EXPECT_THROW(CusumDetector(1, 0.5, 8.0), CheckError);
  EXPECT_THROW(CusumDetector(10, -0.1, 8.0), CheckError);
  EXPECT_THROW(CusumDetector(10, 0.5, 0.0), CheckError);
}

TEST(AnalyzeShot, PointMassDiagnostics) {
  image::ImageF img(9, 9);
  img.at(4, 6) = 2.0;
  const ShotDiagnostics d = analyze_shot(img);
  EXPECT_DOUBLE_EQ(d.total_intensity, 2.0);
  EXPECT_DOUBLE_EQ(d.com_x, 6.0);
  EXPECT_DOUBLE_EQ(d.com_y, 4.0);
  EXPECT_DOUBLE_EQ(d.second_moment, 0.0);
}

TEST(AnalyzeShot, WiderBeamHasLargerSecondMoment) {
  data::BeamProfileConfig narrow;
  narrow.base_sigma_frac = 0.05;
  narrow.noise = 0.0;
  narrow.com_jitter = 0.0;
  narrow.multi_lobe_prob = 0.0;
  narrow.exotic_prob = 0.0;
  narrow.max_ellipticity = 1.0;
  data::BeamProfileConfig wide = narrow;
  wide.base_sigma_frac = 0.12;
  Rng r1(5), r2(5);
  const auto a = data::generate_beam_profile(narrow, r1);
  const auto b = data::generate_beam_profile(wide, r2);
  EXPECT_LT(analyze_shot(a.frame).second_moment,
            analyze_shot(b.frame).second_moment);
}

TEST(BeamDiagnostics, QuietBeamRaisesNoAlarms) {
  data::BeamProfileConfig beam;
  beam.height = 24;
  beam.width = 24;
  beam.com_jitter = 0.02;
  beam.exotic_prob = 0.0;
  beam.multi_lobe_prob = 0.0;
  BeamProfileSource source(beam, 400, 120.0, 6);
  BeamDiagnostics diag(100);
  while (auto event = source.next()) {
    diag.update(*event);
  }
  EXPECT_EQ(diag.shots_seen(), 400u);
  EXPECT_EQ(diag.total_alarms(), 0);
  EXPECT_EQ(diag.frame_stats().count(), 400u);
}

TEST(BeamDiagnostics, PointingDriftRaisesPointingAlarm) {
  data::BeamProfileConfig beam;
  beam.height = 24;
  beam.width = 24;
  beam.com_jitter = 0.01;
  beam.exotic_prob = 0.0;
  beam.multi_lobe_prob = 0.0;
  BeamDiagnostics diag(100);

  // Nominal phase.
  BeamProfileSource nominal(beam, 200, 120.0, 7);
  while (auto event = nominal.next()) {
    diag.update(*event);
  }
  EXPECT_EQ(diag.total_alarms(), 0);

  // Drifted phase: shift every frame right by offsetting the generator's
  // CoM jitter center (simulate by rolling pixels).
  BeamProfileSource drifted(beam, 120, 120.0, 8);
  bool pointing_alarm = false;
  while (auto event = drifted.next()) {
    image::ImageF shifted(event->frame.height(), event->frame.width());
    for (std::size_t y = 0; y < shifted.height(); ++y) {
      for (std::size_t x = 4; x < shifted.width(); ++x) {
        shifted.at(y, x) = event->frame.at(y, x - 4);
      }
    }
    event->frame = std::move(shifted);
    for (const auto& alarm : diag.update(*event)) {
      if (alarm.find("pointing") != std::string::npos) {
        pointing_alarm = true;
      }
    }
  }
  EXPECT_TRUE(pointing_alarm);
}

TEST(BeamDiagnostics, IntensityDropRaisesIntensityAlarm) {
  data::BeamProfileConfig beam;
  beam.height = 24;
  beam.width = 24;
  beam.intensity_jitter = 0.05;
  beam.exotic_prob = 0.0;
  BeamDiagnostics diag(100);
  BeamProfileSource nominal(beam, 200, 120.0, 9);
  while (auto event = nominal.next()) {
    diag.update(*event);
  }
  BeamProfileSource weak(beam, 120, 120.0, 10);
  bool intensity_alarm = false;
  while (auto event = weak.next()) {
    for (auto& p : event->frame.pixels()) p *= 0.5;  // pulse energy drop
    for (const auto& alarm : diag.update(*event)) {
      if (alarm.find("intensity") != std::string::npos) {
        intensity_alarm = true;
      }
    }
  }
  EXPECT_TRUE(intensity_alarm);
}

}  // namespace
}  // namespace arams::stream
