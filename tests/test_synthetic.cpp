// Tests for the synthetic low-rank data factory: the generated spectra must
// match the requested ones, and per-core perturbed shards must be similar
// but not identical (Section V.1).

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"
#include "linalg/blas.hpp"
#include "linalg/qr.hpp"
#include "util/check.hpp"

namespace arams::data {
namespace {

using linalg::Matrix;

TEST(RandomOrthogonal, ColumnsOrthonormal) {
  Rng rng(1);
  const Matrix q = random_orthogonal(30, 8, rng);
  EXPECT_LT(linalg::orthonormality_defect(q), 1e-10);
}

TEST(RandomOrthogonal, WideThrows) {
  Rng rng(2);
  EXPECT_THROW(random_orthogonal(3, 5, rng), CheckError);
}

TEST(PerturbOrthogonal, ZeroEpsilonIsIdentityOp) {
  Rng rng(3);
  const Matrix q = random_orthogonal(20, 4, rng);
  const Matrix p = perturb_orthogonal(q, 0.0, rng);
  EXPECT_EQ(Matrix::max_abs_diff(p, q), 0.0);
}

TEST(PerturbOrthogonal, SmallEpsilonStaysClose) {
  Rng rng(4);
  const Matrix q = random_orthogonal(40, 6, rng);
  const Matrix p = perturb_orthogonal(q, 1e-3, rng);
  EXPECT_LT(linalg::orthonormality_defect(p), 1e-10);
  EXPECT_LT(Matrix::max_abs_diff(p, q), 0.05);
  EXPECT_GT(Matrix::max_abs_diff(p, q), 0.0);
}

TEST(MakeLowRank, SingularValuesMatchRequested) {
  SyntheticConfig config;
  config.n = 60;
  config.d = 25;
  config.spectrum.kind = DecayKind::kExponential;
  config.spectrum.count = 10;
  config.spectrum.rate = 0.3;
  Rng rng(5);
  const Matrix a = make_low_rank(config, rng);
  EXPECT_EQ(a.rows(), 60u);
  EXPECT_EQ(a.cols(), 25u);

  const auto requested = make_spectrum(config.spectrum);
  const auto actual = exact_singular_values(a);
  for (std::size_t i = 0; i < requested.size(); ++i) {
    EXPECT_NEAR(actual[i], requested[i], 1e-8);
  }
  // Remaining singular values are numerically zero.
  for (std::size_t i = requested.size(); i < actual.size(); ++i) {
    EXPECT_LT(actual[i], 1e-8);
  }
}

TEST(MakeLowRank, NoiseLiftsTail) {
  SyntheticConfig config;
  config.n = 40;
  config.d = 20;
  config.spectrum.count = 5;
  config.noise = 0.01;
  Rng rng(6);
  const Matrix a = make_low_rank(config, rng);
  const auto sv = exact_singular_values(a);
  EXPECT_GT(sv[10], 0.0);  // noise floor is nonzero
}

TEST(MakeLowRank, RankBeyondDimensionsThrows) {
  SyntheticConfig config;
  config.n = 10;
  config.d = 5;
  config.spectrum.count = 8;
  Rng rng(7);
  EXPECT_THROW(make_low_rank(config, rng), CheckError);
}

TEST(CoreShards, SameCoreIndexIsDeterministic) {
  SyntheticConfig config;
  config.n = 20;
  config.d = 10;
  config.spectrum.count = 4;
  Rng rng(8);
  const SharedFactors f = make_shared_factors(config, rng);
  const Rng base(99);
  const Matrix s1 = make_core_shard(f, 2, 0.01, base);
  const Matrix s2 = make_core_shard(f, 2, 0.01, base);
  EXPECT_EQ(Matrix::max_abs_diff(s1, s2), 0.0);
}

TEST(CoreShards, DifferentCoresSimilarButNotIdentical) {
  SyntheticConfig config;
  config.n = 30;
  config.d = 12;
  config.spectrum.count = 4;
  Rng rng(9);
  const SharedFactors f = make_shared_factors(config, rng);
  const Rng base(77);
  const Matrix s0 = make_core_shard(f, 0, 0.01, base);
  const Matrix s1 = make_core_shard(f, 1, 0.01, base);
  const double diff = Matrix::max_abs_diff(s0, s1);
  EXPECT_GT(diff, 0.0);
  // A small perturbation keeps shards close relative to their magnitude.
  const double scale = linalg::frobenius_norm(s0);
  EXPECT_LT(diff, scale);
}

TEST(CoreShards, ZeroPerturbationGivesIdenticalShards) {
  SyntheticConfig config;
  config.n = 15;
  config.d = 8;
  config.spectrum.count = 3;
  Rng rng(10);
  const SharedFactors f = make_shared_factors(config, rng);
  const Rng base(11);
  const Matrix s0 = make_core_shard(f, 0, 0.0, base);
  const Matrix s1 = make_core_shard(f, 5, 0.0, base);
  EXPECT_LT(Matrix::max_abs_diff(s0, s1), 1e-12);
}

}  // namespace
}  // namespace arams::data
