// Unit tests for the Matrix container.

#include <gtest/gtest.h>

#include "linalg/matrix.hpp"
#include "util/check.hpp"

namespace arams::linalg {
namespace {

TEST(Matrix, ZeroInitialized) {
  const Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(m(r, c), 0.0);
    }
  }
}

TEST(Matrix, InitializerList) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW(Matrix({{1.0, 2.0}, {3.0}}), CheckError);
}

TEST(Matrix, RowSpanWritesThrough) {
  Matrix m(2, 3);
  auto row = m.row(1);
  row[2] = 7.0;
  EXPECT_EQ(m(1, 2), 7.0);
}

TEST(Matrix, FillAndZeroRow) {
  Matrix m(2, 2);
  m.fill(5.0);
  m.zero_row(0);
  EXPECT_EQ(m(0, 0), 0.0);
  EXPECT_EQ(m(0, 1), 0.0);
  EXPECT_EQ(m(1, 0), 5.0);
}

TEST(Matrix, SetRowValidatesLength) {
  Matrix m(2, 3);
  const std::vector<double> good{1.0, 2.0, 3.0};
  const std::vector<double> bad{1.0};
  EXPECT_NO_THROW(m.set_row(0, good));
  EXPECT_THROW(m.set_row(0, bad), CheckError);
  EXPECT_EQ(m(0, 2), 3.0);
}

TEST(Matrix, AppendZeroRows) {
  Matrix m{{1.0, 2.0}};
  m.append_zero_rows(2);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(2, 0), 0.0);
}

TEST(Matrix, SliceRows) {
  const Matrix m{{1.0}, {2.0}, {3.0}, {4.0}};
  const Matrix s = m.slice_rows(1, 3);
  ASSERT_EQ(s.rows(), 2u);
  EXPECT_EQ(s(0, 0), 2.0);
  EXPECT_EQ(s(1, 0), 3.0);
}

TEST(Matrix, SliceValidatesBounds) {
  const Matrix m(2, 2);
  EXPECT_THROW(m.slice_rows(1, 3), CheckError);
  EXPECT_THROW(m.slice_rows(2, 1), CheckError);
}

TEST(Matrix, TransposeRoundTrip) {
  Matrix m(5, 7);
  double v = 0.0;
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 7; ++c) {
      m(r, c) = v++;
    }
  }
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 7u);
  EXPECT_EQ(t.cols(), 5u);
  EXPECT_EQ(Matrix::max_abs_diff(t.transposed(), m), 0.0);
}

TEST(Matrix, TransposeLargeBlocks) {
  // Exercise the blocked path with dimensions > one block.
  Matrix m(65, 70);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      m(r, c) = static_cast<double>(r * 1000 + c);
    }
  }
  const Matrix t = m.transposed();
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      ASSERT_EQ(t(c, r), m(r, c));
    }
  }
}

TEST(Matrix, Vstack) {
  const Matrix a{{1.0, 2.0}};
  const Matrix b{{3.0, 4.0}, {5.0, 6.0}};
  const Matrix s = Matrix::vstack(a, b);
  ASSERT_EQ(s.rows(), 3u);
  EXPECT_EQ(s(0, 0), 1.0);
  EXPECT_EQ(s(2, 1), 6.0);
}

TEST(Matrix, VstackWithEmpty) {
  const Matrix a{{1.0, 2.0}};
  const Matrix empty;
  EXPECT_EQ(Matrix::max_abs_diff(Matrix::vstack(a, empty), a), 0.0);
  EXPECT_EQ(Matrix::max_abs_diff(Matrix::vstack(empty, a), a), 0.0);
}

TEST(Matrix, VstackColumnMismatchThrows) {
  const Matrix a(1, 2);
  const Matrix b(1, 3);
  EXPECT_THROW(Matrix::vstack(a, b), CheckError);
}

TEST(Matrix, Identity) {
  const Matrix i = Matrix::identity(3);
  EXPECT_EQ(i(0, 0), 1.0);
  EXPECT_EQ(i(1, 1), 1.0);
  EXPECT_EQ(i(0, 1), 0.0);
}

TEST(Matrix, MaxAbsDiff) {
  const Matrix a{{1.0, 2.0}};
  const Matrix b{{1.5, 2.0}};
  EXPECT_DOUBLE_EQ(Matrix::max_abs_diff(a, b), 0.5);
}

TEST(Matrix, MaxAbsDiffShapeMismatchThrows) {
  EXPECT_THROW(Matrix::max_abs_diff(Matrix(1, 2), Matrix(2, 1)), CheckError);
}

}  // namespace
}  // namespace arams::linalg
