// Unit tests for the Matrix container.

#include <gtest/gtest.h>

#include "linalg/matrix.hpp"
#include "util/check.hpp"

namespace arams::linalg {
namespace {

TEST(Matrix, ZeroInitialized) {
  const Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(m(r, c), 0.0);
    }
  }
}

TEST(Matrix, InitializerList) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW(Matrix({{1.0, 2.0}, {3.0}}), CheckError);
}

TEST(Matrix, RowSpanWritesThrough) {
  Matrix m(2, 3);
  auto row = m.row(1);
  row[2] = 7.0;
  EXPECT_EQ(m(1, 2), 7.0);
}

TEST(Matrix, FillAndZeroRow) {
  Matrix m(2, 2);
  m.fill(5.0);
  m.zero_row(0);
  EXPECT_EQ(m(0, 0), 0.0);
  EXPECT_EQ(m(0, 1), 0.0);
  EXPECT_EQ(m(1, 0), 5.0);
}

TEST(Matrix, SetRowValidatesLength) {
  Matrix m(2, 3);
  const std::vector<double> good{1.0, 2.0, 3.0};
  const std::vector<double> bad{1.0};
  EXPECT_NO_THROW(m.set_row(0, good));
  EXPECT_THROW(m.set_row(0, bad), CheckError);
  EXPECT_EQ(m(0, 2), 3.0);
}

TEST(Matrix, AppendZeroRows) {
  Matrix m{{1.0, 2.0}};
  m.append_zero_rows(2);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(2, 0), 0.0);
}

TEST(Matrix, SliceRows) {
  const Matrix m{{1.0}, {2.0}, {3.0}, {4.0}};
  const Matrix s = m.slice_rows(1, 3);
  ASSERT_EQ(s.rows(), 2u);
  EXPECT_EQ(s(0, 0), 2.0);
  EXPECT_EQ(s(1, 0), 3.0);
}

TEST(Matrix, SliceValidatesBounds) {
  const Matrix m(2, 2);
  EXPECT_THROW(m.slice_rows(1, 3), CheckError);
  EXPECT_THROW(m.slice_rows(2, 1), CheckError);
}

TEST(Matrix, TransposeRoundTrip) {
  Matrix m(5, 7);
  double v = 0.0;
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 7; ++c) {
      m(r, c) = v++;
    }
  }
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 7u);
  EXPECT_EQ(t.cols(), 5u);
  EXPECT_EQ(Matrix::max_abs_diff(t.transposed(), m), 0.0);
}

TEST(Matrix, TransposeLargeBlocks) {
  // Exercise the blocked path with dimensions > one block.
  Matrix m(65, 70);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      m(r, c) = static_cast<double>(r * 1000 + c);
    }
  }
  const Matrix t = m.transposed();
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      ASSERT_EQ(t(c, r), m(r, c));
    }
  }
}

TEST(Matrix, Vstack) {
  const Matrix a{{1.0, 2.0}};
  const Matrix b{{3.0, 4.0}, {5.0, 6.0}};
  const Matrix s = Matrix::vstack(a, b);
  ASSERT_EQ(s.rows(), 3u);
  EXPECT_EQ(s(0, 0), 1.0);
  EXPECT_EQ(s(2, 1), 6.0);
}

TEST(Matrix, VstackWithEmpty) {
  const Matrix a{{1.0, 2.0}};
  const Matrix empty;
  EXPECT_EQ(Matrix::max_abs_diff(Matrix::vstack(a, empty), a), 0.0);
  EXPECT_EQ(Matrix::max_abs_diff(Matrix::vstack(empty, a), a), 0.0);
}

TEST(Matrix, VstackColumnMismatchThrows) {
  const Matrix a(1, 2);
  const Matrix b(1, 3);
  EXPECT_THROW(Matrix::vstack(a, b), CheckError);
}

TEST(Matrix, Identity) {
  const Matrix i = Matrix::identity(3);
  EXPECT_EQ(i(0, 0), 1.0);
  EXPECT_EQ(i(1, 1), 1.0);
  EXPECT_EQ(i(0, 1), 0.0);
}

TEST(Matrix, MaxAbsDiff) {
  const Matrix a{{1.0, 2.0}};
  const Matrix b{{1.5, 2.0}};
  EXPECT_DOUBLE_EQ(Matrix::max_abs_diff(a, b), 0.5);
}

TEST(Matrix, MaxAbsDiffShapeMismatchThrows) {
  EXPECT_THROW(Matrix::max_abs_diff(Matrix(1, 2), Matrix(2, 1)), CheckError);
}

TEST(Matrix, BytesTrackLiveShapeCapacityKeepsHighWater) {
  Matrix m(4, 8);
  EXPECT_EQ(m.bytes(), 4u * 8u * sizeof(double));
  EXPECT_GE(m.capacity_bytes(), m.bytes());
  const std::size_t high_water = m.capacity_bytes();
  // Grow-only reshape: shrinking updates the live footprint but never
  // releases the reservation (the allocation-free steady-state contract).
  m.reshape(2, 3);
  EXPECT_EQ(m.bytes(), 2u * 3u * sizeof(double));
  EXPECT_EQ(m.capacity_bytes(), high_water);
  m.reshape(4, 8);
  EXPECT_EQ(m.bytes(), 4u * 8u * sizeof(double));
  EXPECT_EQ(m.capacity_bytes(), high_water);
}

// ------------------------------------------------- MatrixF (fp32 ingest)

TEST(MatrixF, ZeroInitialized) {
  const MatrixF m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(m(r, c), 0.0F);
    }
  }
}

TEST(MatrixF, InitializerListAndRowSpans) {
  MatrixF m{{1.0F, 2.0F}, {3.0F, 4.0F}};
  EXPECT_EQ(m(0, 1), 2.0F);
  EXPECT_EQ(m(1, 0), 3.0F);
  m.row(1)[0] = 5.0F;
  EXPECT_EQ(m(1, 0), 5.0F);
  EXPECT_EQ(m.row(0).size(), 2u);
}

TEST(MatrixF, BytesAreFloatSized) {
  MatrixF m(4, 8);
  EXPECT_EQ(m.bytes(), 4u * 8u * sizeof(float));
  EXPECT_GE(m.capacity_bytes(), m.bytes());
  const std::size_t high_water = m.capacity_bytes();
  m.reshape(1, 8);
  EXPECT_EQ(m.bytes(), 1u * 8u * sizeof(float));
  EXPECT_EQ(m.capacity_bytes(), high_water);
  // The whole point of the lane: the same shape costs half the bytes.
  EXPECT_EQ(Matrix(4, 8).bytes(), 2u * MatrixF(4, 8).bytes());
}

TEST(MatrixF, RoundTripsThroughMatrix) {
  const Matrix wide{{1.25, -2.5}, {3.75, 0.5}};  // exact in fp32
  const MatrixF narrow = MatrixF::from_matrix(wide);
  EXPECT_EQ(narrow(0, 1), -2.5F);
  EXPECT_EQ(Matrix::max_abs_diff(narrow.to_matrix(), wide), 0.0);
}

TEST(MatrixF, WidenReusesDestinationStorage) {
  const MatrixF src{{1.0F, 2.0F, 3.0F}, {4.0F, 5.0F, 6.0F}};
  Matrix dst(8, 8);  // bigger than needed: widen must grow-only reshape
  const std::size_t reserved = dst.capacity_bytes();
  widen(MatrixViewF(src), dst);
  EXPECT_EQ(dst.rows(), 2u);
  EXPECT_EQ(dst.cols(), 3u);
  EXPECT_EQ(dst(1, 2), 6.0);
  EXPECT_EQ(dst.capacity_bytes(), reserved);
}

TEST(MatrixF, SliceRowsAndViews) {
  const MatrixF m{{1.0F, 2.0F}, {3.0F, 4.0F}, {5.0F, 6.0F}};
  const MatrixF s = m.slice_rows(1, 3);
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_EQ(s(0, 0), 3.0F);
  const MatrixViewF v = MatrixViewF::rows_of(m, 1, 3);
  EXPECT_EQ(v.rows(), 2u);
  EXPECT_EQ(v(1, 1), 6.0F);
  EXPECT_THROW(MatrixViewF::rows_of(m, 2, 5), CheckError);
}

TEST(MatrixF, MaxAbsDiff) {
  const MatrixF a{{1.0F, 2.0F}};
  const MatrixF b{{1.5F, 2.0F}};
  EXPECT_EQ(MatrixF::max_abs_diff(a, b), 0.5F);
}

}  // namespace
}  // namespace arams::linalg
