// Unit and property tests for the BLAS-like kernels. Property tests check
// algebraic identities on random matrices across a size sweep (TEST_P).

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/blas.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace arams::linalg {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    rng.fill_normal(m.row(i));
  }
  return m;
}

TEST(Blas, DotBasics) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> y{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(x, y), 4.0 - 10.0 + 18.0);
}

TEST(Blas, AxpyAccumulates) {
  const std::vector<double> x{1.0, 2.0};
  std::vector<double> y{10.0, 20.0};
  axpy(0.5, x, y);
  EXPECT_DOUBLE_EQ(y[0], 10.5);
  EXPECT_DOUBLE_EQ(y[1], 21.0);
}

TEST(Blas, ScaleInPlace) {
  std::vector<double> x{2.0, -4.0};
  scale(x, 0.5);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], -2.0);
}

TEST(Blas, NormsAgree) {
  const std::vector<double> x{3.0, 4.0};
  EXPECT_DOUBLE_EQ(norm2(x), 5.0);
  EXPECT_DOUBLE_EQ(norm2_squared(x), 25.0);
}

TEST(Blas, MatmulKnownValues) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Blas, MatmulShapeMismatchThrows) {
  EXPECT_THROW(matmul(Matrix(2, 3), Matrix(2, 3)), CheckError);
}

TEST(Blas, GemvMatchesMatmul) {
  Rng rng(1);
  const Matrix a = random_matrix(6, 4, rng);
  Matrix x(4, 1);
  rng.fill_normal(x.row(0));  // column vector as 4x1 via transpose trick
  std::vector<double> xv(4);
  for (std::size_t i = 0; i < 4; ++i) xv[i] = x(i, 0);
  std::vector<double> y(6);
  gemv(a, xv, y);
  const Matrix ax = matmul(a, x);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(y[i], ax(i, 0), 1e-12);
  }
}

TEST(Blas, GemvTransposedMatchesExplicitTranspose) {
  Rng rng(2);
  const Matrix a = random_matrix(5, 3, rng);
  std::vector<double> x(5);
  rng.fill_normal(x);
  std::vector<double> y(3);
  gemv_t(a, x, y);
  std::vector<double> expected(3);
  gemv(a.transposed(), x, expected);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(y[i], expected[i], 1e-12);
  }
}

TEST(Blas, FrobeniusNorm) {
  const Matrix a{{3.0, 0.0}, {0.0, 4.0}};
  EXPECT_DOUBLE_EQ(frobenius_norm(a), 5.0);
  EXPECT_DOUBLE_EQ(frobenius_norm_squared(a), 25.0);
}

/// Property sweep across shapes: transpose-product identities.
class BlasShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BlasShapes, MatmulTnMatchesExplicitTranspose) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 10007 + k * 101 + n));
  const Matrix a = random_matrix(k, m, rng);
  const Matrix b = random_matrix(k, n, rng);
  const Matrix fast = matmul_tn(a, b);
  const Matrix ref = matmul(a.transposed(), b);
  EXPECT_LT(Matrix::max_abs_diff(fast, ref), 1e-10);
}

TEST_P(BlasShapes, MatmulNtMatchesExplicitTranspose) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 7 + k * 11 + n * 13));
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(n, k, rng);
  const Matrix fast = matmul_nt(a, b);
  const Matrix ref = matmul(a, b.transposed());
  EXPECT_LT(Matrix::max_abs_diff(fast, ref), 1e-10);
}

TEST_P(BlasShapes, GramRowsMatchesProduct) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m + k + n));
  const Matrix a = random_matrix(m, k, rng);
  const Matrix g = gram_rows(a);
  const Matrix ref = matmul_nt(a, a);
  EXPECT_LT(Matrix::max_abs_diff(g, ref), 1e-10);
  // Symmetry.
  EXPECT_LT(Matrix::max_abs_diff(g, g.transposed()), 1e-12);
}

TEST_P(BlasShapes, GramColsMatchesProduct) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 3 + k * 5 + n * 7));
  const Matrix a = random_matrix(m, k, rng);
  const Matrix g = gram_cols(a);
  const Matrix ref = matmul_tn(a, a);
  EXPECT_LT(Matrix::max_abs_diff(g, ref), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BlasShapes,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{2, 3, 4},
                      std::tuple{5, 5, 5}, std::tuple{7, 2, 9},
                      std::tuple{16, 33, 8}, std::tuple{40, 17, 25}));

TEST(Blas, MatmulAssociativityProperty) {
  Rng rng(77);
  const Matrix a = random_matrix(4, 5, rng);
  const Matrix b = random_matrix(5, 6, rng);
  const Matrix c = random_matrix(6, 3, rng);
  const Matrix left = matmul(matmul(a, b), c);
  const Matrix right = matmul(a, matmul(b, c));
  EXPECT_LT(Matrix::max_abs_diff(left, right), 1e-10);
}

}  // namespace
}  // namespace arams::linalg
