// Unit and property tests for the BLAS-like kernels. Property tests check
// algebraic identities on random matrices across a size sweep (TEST_P).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "linalg/blas.hpp"
#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace arams::linalg {
namespace {

// The parallel GEMM path needs a pool with >= 2 workers. On single-core CI
// boxes hardware_concurrency() is 1, so force the pool size via env before
// anything touches parallel::shared_pool() (it is built lazily on the first
// above-threshold kernel call, well after static init). An externally set
// value wins (overwrite = 0).
const bool kPoolEnvForced = [] {
  ::setenv("ARAMS_POOL_THREADS", "4", /*overwrite=*/0);
  return true;
}();

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    rng.fill_normal(m.row(i));
  }
  return m;
}

TEST(Blas, DotBasics) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> y{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(x, y), 4.0 - 10.0 + 18.0);
}

TEST(Blas, AxpyAccumulates) {
  const std::vector<double> x{1.0, 2.0};
  std::vector<double> y{10.0, 20.0};
  axpy(0.5, x, y);
  EXPECT_DOUBLE_EQ(y[0], 10.5);
  EXPECT_DOUBLE_EQ(y[1], 21.0);
}

TEST(Blas, ScaleInPlace) {
  std::vector<double> x{2.0, -4.0};
  scale(x, 0.5);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], -2.0);
}

TEST(Blas, NormsAgree) {
  const std::vector<double> x{3.0, 4.0};
  EXPECT_DOUBLE_EQ(norm2(x), 5.0);
  EXPECT_DOUBLE_EQ(norm2_squared(x), 25.0);
}

TEST(Blas, MatmulKnownValues) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Blas, MatmulShapeMismatchThrows) {
  EXPECT_THROW(matmul(Matrix(2, 3), Matrix(2, 3)), CheckError);
}

TEST(Blas, GemvMatchesMatmul) {
  Rng rng(1);
  const Matrix a = random_matrix(6, 4, rng);
  Matrix x(4, 1);
  rng.fill_normal(x.row(0));  // column vector as 4x1 via transpose trick
  std::vector<double> xv(4);
  for (std::size_t i = 0; i < 4; ++i) xv[i] = x(i, 0);
  std::vector<double> y(6);
  gemv(a, xv, y);
  const Matrix ax = matmul(a, x);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(y[i], ax(i, 0), 1e-12);
  }
}

TEST(Blas, GemvTransposedMatchesExplicitTranspose) {
  Rng rng(2);
  const Matrix a = random_matrix(5, 3, rng);
  std::vector<double> x(5);
  rng.fill_normal(x);
  std::vector<double> y(3);
  gemv_t(a, x, y);
  std::vector<double> expected(3);
  gemv(a.transposed(), x, expected);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(y[i], expected[i], 1e-12);
  }
}

TEST(Blas, FrobeniusNorm) {
  const Matrix a{{3.0, 0.0}, {0.0, 4.0}};
  EXPECT_DOUBLE_EQ(frobenius_norm(a), 5.0);
  EXPECT_DOUBLE_EQ(frobenius_norm_squared(a), 25.0);
}

/// Property sweep across shapes: transpose-product identities.
class BlasShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BlasShapes, MatmulTnMatchesExplicitTranspose) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 10007 + k * 101 + n));
  const Matrix a = random_matrix(k, m, rng);
  const Matrix b = random_matrix(k, n, rng);
  const Matrix fast = matmul_tn(a, b);
  const Matrix ref = matmul(a.transposed(), b);
  EXPECT_LT(Matrix::max_abs_diff(fast, ref), 1e-10);
}

TEST_P(BlasShapes, MatmulNtMatchesExplicitTranspose) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 7 + k * 11 + n * 13));
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(n, k, rng);
  const Matrix fast = matmul_nt(a, b);
  const Matrix ref = matmul(a, b.transposed());
  EXPECT_LT(Matrix::max_abs_diff(fast, ref), 1e-10);
}

TEST_P(BlasShapes, GramRowsMatchesProduct) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m + k + n));
  const Matrix a = random_matrix(m, k, rng);
  const Matrix g = gram_rows(a);
  const Matrix ref = matmul_nt(a, a);
  EXPECT_LT(Matrix::max_abs_diff(g, ref), 1e-10);
  // Symmetry.
  EXPECT_LT(Matrix::max_abs_diff(g, g.transposed()), 1e-12);
}

TEST_P(BlasShapes, GramColsMatchesProduct) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 3 + k * 5 + n * 7));
  const Matrix a = random_matrix(m, k, rng);
  const Matrix g = gram_cols(a);
  const Matrix ref = matmul_tn(a, a);
  EXPECT_LT(Matrix::max_abs_diff(g, ref), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BlasShapes,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{2, 3, 4},
                      std::tuple{5, 5, 5}, std::tuple{7, 2, 9},
                      std::tuple{16, 33, 8}, std::tuple{40, 17, 25}));

// ---------------------------------------------------------------------------
// Tiled / packed kernels vs. a naive triple loop. The tiled code reorders
// the k-accumulation, so results are not bit-identical to the reference —
// the contract is <= 1e-12 *relative* Frobenius error.

Matrix naive_matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double s = 0.0;
      for (std::size_t p = 0; p < a.cols(); ++p) s += a(i, p) * b(p, j);
      c(i, j) = s;
    }
  }
  return c;
}

double relative_frobenius_error(const Matrix& got, const Matrix& want) {
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < got.rows(); ++i) {
    for (std::size_t j = 0; j < got.cols(); ++j) {
      const double d = got(i, j) - want(i, j);
      num += d * d;
      den += want(i, j) * want(i, j);
    }
  }
  return den == 0.0 ? std::sqrt(num) : std::sqrt(num / den);
}

/// (m, k, n) shapes chosen to hit every tiling edge case: single element,
/// k spilling one KC panel (257), all dims straddling the MR=4 register
/// block (127/65), tall-thin and short-fat panels.
class TiledVsNaive
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TiledVsNaive, Matmul) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 131071 + k * 8191 + n));
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(k, n, rng);
  EXPECT_LE(relative_frobenius_error(matmul(a, b), naive_matmul(a, b)),
            1e-12);
}

TEST_P(TiledVsNaive, MatmulTn) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 524287 + k * 127 + n));
  const Matrix a = random_matrix(k, m, rng);
  const Matrix b = random_matrix(k, n, rng);
  EXPECT_LE(relative_frobenius_error(matmul_tn(a, b),
                                     naive_matmul(a.transposed(), b)),
            1e-12);
}

TEST_P(TiledVsNaive, MatmulNt) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 8209 + k * 31 + n));
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(n, k, rng);
  EXPECT_LE(relative_frobenius_error(matmul_nt(a, b),
                                     naive_matmul(a, b.transposed())),
            1e-12);
}

TEST_P(TiledVsNaive, GramRows) {
  const auto [m, k, n] = GetParam();
  (void)n;
  Rng rng(static_cast<std::uint64_t>(m * 97 + k));
  const Matrix a = random_matrix(m, k, rng);
  EXPECT_LE(relative_frobenius_error(gram_rows(a),
                                     naive_matmul(a, a.transposed())),
            1e-12);
}

TEST_P(TiledVsNaive, GramCols) {
  const auto [m, k, n] = GetParam();
  (void)n;
  Rng rng(static_cast<std::uint64_t>(m * 193 + k * 3));
  const Matrix a = random_matrix(m, k, rng);
  EXPECT_LE(relative_frobenius_error(gram_cols(a),
                                     naive_matmul(a.transposed(), a)),
            1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    OddShapes, TiledVsNaive,
    ::testing::Values(std::tuple{1, 1, 1},        // degenerate single element
                      std::tuple{3, 257, 4},      // k spills one KC panel
                      std::tuple{127, 64, 65},    // dims straddle MR blocks
                      std::tuple{301, 7, 5},      // tall-thin
                      std::tuple{5, 7, 301}));    // short-fat

TEST(BlasParallel, LargeGemmDispatchesToPoolAndMatchesNaive) {
  ASSERT_TRUE(kPoolEnvForced);
  // 2·192³ ≈ 14.2 Mflop, above the 8 Mflop dispatch threshold.
  const std::size_t n = 192;
  Rng rng(4242);
  const Matrix a = random_matrix(n, n, rng);
  const Matrix b = random_matrix(n, n, rng);
  obs::Counter& dispatches =
      obs::metrics().counter("linalg.gemm_parallel_count");
  const long before = dispatches.value();
  const Matrix fast = matmul(a, b);
  ASSERT_GE(parallel::shared_pool().thread_count(), 2u)
      << "ARAMS_POOL_THREADS did not take effect";
  EXPECT_GT(dispatches.value(), before)
      << "above-threshold GEMM did not take the parallel path";
  EXPECT_LE(relative_frobenius_error(fast, naive_matmul(a, b)), 1e-12);
}

TEST(BlasParallel, LargeGramDispatchesToPoolAndMatchesNaive) {
  ASSERT_TRUE(kPoolEnvForced);
  // m²·d = 200²·250 = 10 Mflop, above the dispatch threshold.
  Rng rng(777);
  const Matrix a = random_matrix(200, 250, rng);
  obs::Counter& dispatches =
      obs::metrics().counter("linalg.gemm_parallel_count");
  const long before = dispatches.value();
  const Matrix g = gram_rows(a);
  EXPECT_GT(dispatches.value(), before);
  EXPECT_LE(relative_frobenius_error(g, naive_matmul(a, a.transposed())),
            1e-12);
  // Band-parallel Gram must stay exactly symmetric (mirrored, not recomputed).
  EXPECT_EQ(Matrix::max_abs_diff(g, g.transposed()), 0.0);
}

TEST(BlasParallel, BelowThresholdStaysSequential) {
  Rng rng(31);
  const Matrix a = random_matrix(16, 16, rng);
  const Matrix b = random_matrix(16, 16, rng);
  obs::Counter& dispatches =
      obs::metrics().counter("linalg.gemm_parallel_count");
  const long before = dispatches.value();
  const Matrix c = matmul(a, b);
  EXPECT_EQ(dispatches.value(), before);
  EXPECT_LE(relative_frobenius_error(c, naive_matmul(a, b)), 1e-12);
}

TEST(Blas, MatmulAssociativityProperty) {
  Rng rng(77);
  const Matrix a = random_matrix(4, 5, rng);
  const Matrix b = random_matrix(5, 6, rng);
  const Matrix c = random_matrix(6, 3, rng);
  const Matrix left = matmul(matmul(a, b), c);
  const Matrix right = matmul(a, matmul(b, c));
  EXPECT_LT(Matrix::max_abs_diff(left, right), 1e-10);
}

// ------------------------------------------ mixed-precision (fp32) lane

MatrixF narrow_matrix(const Matrix& m) { return MatrixF::from_matrix(m); }

TEST(BlasMixed, F32DotAndNormsTrackF64) {
  // The fp32 overloads accumulate in double but in a multi-accumulator
  // order, so against the widened-serial reference they agree to rounding,
  // not bitwise.
  Rng rng(41);
  const Matrix wide = random_matrix(2, 501, rng);  // odd length: tail path
  const MatrixF narrow = narrow_matrix(wide);
  const Matrix widened = narrow.to_matrix();
  EXPECT_NEAR(dot(narrow.row(0), narrow.row(1)),
              dot(widened.row(0), widened.row(1)), 1e-10);
  EXPECT_NEAR(norm2_squared(narrow.row(0)), norm2_squared(widened.row(0)),
              1e-10);
  EXPECT_NEAR(norm2(narrow.row(0)), norm2(widened.row(0)), 1e-12);
}

TEST(BlasMixed, AxpyWidensExactly) {
  const std::vector<float> x{1.5F, -2.25F, 0.5F};
  std::vector<double> y{1.0, 2.0, 3.0};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  EXPECT_DOUBLE_EQ(y[1], -2.5);
  EXPECT_DOUBLE_EQ(y[2], 4.0);
}

// The lane's core guarantee: every mixed/fp32 GEMM widens its fp32 panels
// at pack time into the fp64 micro-kernel, so the result is bitwise
// identical to widening the operands up front and running the all-fp64
// kernel. Sizes straddle the blocked-kernel and tail paths.
class BlasMixedGemm : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BlasMixedGemm, MixedTnMatchesWidenedBitwise) {
  const std::size_t n = GetParam();
  Rng rng(43);
  const MatrixF a = narrow_matrix(random_matrix(n + 3, n, rng));
  const MatrixF b = narrow_matrix(random_matrix(n + 3, n + 1, rng));
  const Matrix a64 = a.to_matrix();
  const Matrix b64 = b.to_matrix();

  // Aᵀ(fp64)·B(fp32)
  const Matrix mixed = matmul_tn(MatrixView(a64), MatrixViewF(b));
  const Matrix reference = matmul_tn(a64, b64);
  ASSERT_EQ(mixed.rows(), reference.rows());
  EXPECT_EQ(Matrix::max_abs_diff(mixed, reference), 0.0) << "n=" << n;

  // Aᵀ(fp32)·B(fp32)
  const Matrix both = matmul_tn(MatrixViewF(a), MatrixViewF(b));
  EXPECT_EQ(Matrix::max_abs_diff(both, reference), 0.0) << "n=" << n;

  // A(fp32)·B(fp32) via the plain product
  const MatrixF bt = narrow_matrix(random_matrix(n, n + 1, rng));
  const Matrix prod = matmul(MatrixViewF(a), MatrixViewF(bt));
  EXPECT_EQ(Matrix::max_abs_diff(prod, matmul(a64, bt.to_matrix())), 0.0)
      << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(SizeSweep, BlasMixedGemm,
                         ::testing::Values(3, 17, 64, 129));

TEST(BlasMixed, OutParameterReusesStorage) {
  Rng rng(44);
  const MatrixF a = narrow_matrix(random_matrix(20, 12, rng));
  const MatrixF b = narrow_matrix(random_matrix(20, 9, rng));
  Matrix out(40, 40);  // oversized: the kernel must grow-only reshape
  matmul_tn(MatrixViewF(a), MatrixViewF(b), out);
  EXPECT_EQ(out.rows(), 12u);
  EXPECT_EQ(out.cols(), 9u);
  EXPECT_EQ(Matrix::max_abs_diff(out, matmul_tn(a.to_matrix(), b.to_matrix())),
            0.0);
}

}  // namespace
}  // namespace arams::linalg
