// Rank-Adaptive FD (Algorithms 1–2): the rank must grow to meet the error
// target on hard spectra, stay put on easy ones, and respect its guards.

#include <gtest/gtest.h>

#include <cmath>

#include "core/rank_adaptive.hpp"
#include "data/synthetic.hpp"
#include "linalg/blas.hpp"
#include "linalg/norms.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace arams::core {
namespace {

using linalg::Matrix;

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    rng.fill_normal(m.row(i));
  }
  return m;
}

RankAdaptiveConfig base_config() {
  RankAdaptiveConfig config;
  config.initial_ell = 8;
  config.nu = 8;
  config.epsilon = 0.10;
  config.relative_error = true;
  config.seed = 7;
  return config;
}

TEST(RankAdaptive, InvalidConfigThrows) {
  RankAdaptiveConfig config = base_config();
  config.nu = 0;
  EXPECT_THROW(RankAdaptiveFd{config}, CheckError);
  config = base_config();
  config.epsilon = -1.0;
  EXPECT_THROW(RankAdaptiveFd{config}, CheckError);
}

TEST(RankAdaptive, RankStepDefaultsToNu) {
  RankAdaptiveConfig config = base_config();
  config.rank_step = 0;
  const RankAdaptiveFd fd(config);
  EXPECT_EQ(fd.config().rank_step, static_cast<std::size_t>(config.nu));
}

TEST(RankAdaptive, GrowsRankOnFullRankNoise) {
  // White noise has no low-rank structure: relative residual stays high,
  // so the rank must keep climbing.
  RankAdaptiveConfig config = base_config();
  config.epsilon = 0.05;
  RankAdaptiveFd fd(config);
  Rng rng(1);
  fd.append_batch(random_matrix(600, 64, rng));
  EXPECT_GT(fd.ell(), config.initial_ell);
  EXPECT_GT(fd.stats().rank_increases, 0);
}

TEST(RankAdaptive, KeepsRankOnExactlyLowRankData) {
  data::SyntheticConfig dconfig;
  dconfig.n = 400;
  dconfig.d = 50;
  dconfig.spectrum.kind = data::DecayKind::kStep;
  dconfig.spectrum.count = 4;
  dconfig.spectrum.step_rank = 4;
  dconfig.spectrum.step_floor = 0.0;
  Rng rng(2);
  const Matrix a = data::make_low_rank(dconfig, rng);

  RankAdaptiveConfig config = base_config();
  config.initial_ell = 8;  // already above the true rank of 4
  config.epsilon = 0.05;
  RankAdaptiveFd fd(config);
  fd.append_batch(a);
  EXPECT_EQ(fd.ell(), config.initial_ell);
  EXPECT_EQ(fd.stats().rank_increases, 0);
}

TEST(RankAdaptive, MaxEllCapsGrowth) {
  RankAdaptiveConfig config = base_config();
  config.epsilon = 0.01;
  config.max_ell = 12;
  RankAdaptiveFd fd(config);
  Rng rng(3);
  fd.append_batch(random_matrix(500, 40, rng));
  EXPECT_LE(fd.ell(), 12u);
}

TEST(RankAdaptive, RowsLeftGuardBlocksLateAdaptation) {
  // With rows_remaining announced, the guard rowsLeft > ℓ + ν must prevent
  // growth near the end of the stream (Algorithm 2 line 8).
  RankAdaptiveConfig config = base_config();
  config.initial_ell = 8;
  config.nu = 8;
  config.epsilon = 1e-9;  // would always want to grow
  RankAdaptiveFd fd(config);
  Rng rng(4);
  const Matrix a = random_matrix(24, 16, rng);  // 24 ≤ ℓ+ν after warmup
  fd.set_rows_remaining(static_cast<long>(a.rows()));
  fd.append_batch(a);
  EXPECT_EQ(fd.ell(), config.initial_ell);
}

TEST(RankAdaptive, ProcessReturnsCompressedSketch) {
  RankAdaptiveConfig config = base_config();
  RankAdaptiveFd fd(config);
  Rng rng(5);
  const Matrix a = random_matrix(300, 32, rng);
  const Matrix sketch = fd.process(a);
  EXPECT_LE(sketch.rows(), fd.ell());
  EXPECT_EQ(sketch.cols(), 32u);
}

TEST(RankAdaptive, ErrorEstimateIsPopulated) {
  RankAdaptiveConfig config = base_config();
  RankAdaptiveFd fd(config);
  Rng rng(6);
  fd.append_batch(random_matrix(200, 24, rng));
  EXPECT_FALSE(std::isnan(fd.last_error_estimate()));
  EXPECT_GE(fd.last_error_estimate(), 0.0);
}

TEST(RankAdaptive, FdGuaranteeStillHoldsAtFinalEll) {
  Rng rng(7);
  const Matrix a = random_matrix(400, 30, rng);
  RankAdaptiveConfig config = base_config();
  config.epsilon = 0.2;
  RankAdaptiveFd fd(config);
  const Matrix sketch = fd.process(a);
  Rng power(8);
  const double err = linalg::covariance_error(a, sketch, power, 150);
  // The guarantee with the *initial* ℓ is the conservative bound; the
  // adaptive run only ever grows ℓ, so it must hold a fortiori.
  const double bound = linalg::frobenius_norm_squared(a) /
                       static_cast<double>(config.initial_ell);
  EXPECT_LE(err, bound * 1.001);
}

/// Smaller ε ⇒ final rank no smaller (monotonicity of adaptation).
class EpsilonMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(EpsilonMonotonicity, TighterEpsilonNeverShrinksRank) {
  const double eps = GetParam();
  Rng rng(10);
  const Matrix a = random_matrix(500, 48, rng);

  RankAdaptiveConfig loose = base_config();
  loose.epsilon = eps * 4.0;
  RankAdaptiveConfig tight = base_config();
  tight.epsilon = eps;

  RankAdaptiveFd fd_loose(loose);
  fd_loose.append_batch(a);
  RankAdaptiveFd fd_tight(tight);
  fd_tight.append_batch(a);
  EXPECT_GE(fd_tight.ell(), fd_loose.ell());
}

INSTANTIATE_TEST_SUITE_P(Epsilons, EpsilonMonotonicity,
                         ::testing::Values(0.02, 0.05, 0.1));

TEST(RankAdaptive, AbsoluteErrorModeRuns) {
  RankAdaptiveConfig config = base_config();
  config.relative_error = false;
  config.epsilon = 1e6;  // generous absolute threshold: no growth expected
  RankAdaptiveFd fd(config);
  Rng rng(11);
  fd.append_batch(random_matrix(150, 20, rng));
  EXPECT_EQ(fd.stats().rank_increases, 0);
}

/// All three residual estimators drive the same qualitative adaptation:
/// growth on noise, none on exactly low-rank data.
class EstimatorVariants
    : public ::testing::TestWithParam<linalg::ResidualEstimator> {};

TEST_P(EstimatorVariants, GrowsOnNoiseKeepsOnLowRank) {
  RankAdaptiveConfig config = base_config();
  config.estimator = GetParam();
  config.epsilon = 0.05;

  {
    RankAdaptiveFd fd(config);
    Rng rng(31);
    fd.append_batch(random_matrix(500, 48, rng));
    EXPECT_GT(fd.ell(), config.initial_ell)
        << linalg::residual_estimator_name(GetParam());
  }
  {
    data::SyntheticConfig dc;
    dc.n = 300;
    dc.d = 40;
    dc.spectrum.kind = data::DecayKind::kStep;
    dc.spectrum.count = 4;
    dc.spectrum.step_rank = 4;
    dc.spectrum.step_floor = 0.0;
    Rng rng(32);
    RankAdaptiveFd fd(config);
    fd.append_batch(data::make_low_rank(dc, rng));
    EXPECT_EQ(fd.ell(), config.initial_ell)
        << linalg::residual_estimator_name(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Estimators, EstimatorVariants,
    ::testing::Values(linalg::ResidualEstimator::kGaussianProbes,
                      linalg::ResidualEstimator::kHutchinson,
                      linalg::ResidualEstimator::kHutchPlusPlus));

TEST(RankAdaptive, ProbeBudgetIsAccounted) {
  RankAdaptiveConfig config = base_config();
  RankAdaptiveFd fd(config);
  Rng rng(12);
  fd.append_batch(random_matrix(200, 16, rng));
  // Every estimate consumed exactly ν probes.
  EXPECT_EQ(fd.stats().probe_count % config.nu, 0);
  EXPECT_GT(fd.stats().probe_count, 0);
}

}  // namespace
}  // namespace arams::core
