// Diffraction generator: quadrant weights must be realized on the ring,
// classes must be separable, beam stop must mask the center.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <numbers>

#include "data/diffraction.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace arams::data {
namespace {

DiffractionConfig quiet_config() {
  DiffractionConfig config;
  config.photons_per_frame = 0.0;  // noise-free expected pattern
  config.weight_jitter = 0.0;
  config.radius_jitter = 0.0;
  return config;
}

/// Integrates ring intensity per angular quadrant.
std::array<double, 4> quadrant_mass(const image::ImageF& img) {
  std::array<double, 4> mass{};
  const double cy = (static_cast<double>(img.height()) - 1.0) / 2.0;
  const double cx = (static_cast<double>(img.width()) - 1.0) / 2.0;
  for (std::size_t y = 0; y < img.height(); ++y) {
    for (std::size_t x = 0; x < img.width(); ++x) {
      const double v = img.at(y, x);
      if (v <= 0.0) continue;
      double theta = std::atan2(static_cast<double>(y) - cy,
                                static_cast<double>(x) - cx);
      if (theta < 0.0) theta += 2.0 * std::numbers::pi;
      const auto q = std::min<std::size_t>(
          3, static_cast<std::size_t>(theta / (std::numbers::pi / 2.0)));
      mass[q] += v;
    }
  }
  return mass;
}

TEST(Diffraction, AtLeastOneClassRequired) {
  DiffractionConfig config;
  config.num_classes = 0;
  EXPECT_THROW(DiffractionGenerator{config}, CheckError);
}

TEST(Diffraction, PatternsFixedByClassSeed) {
  const DiffractionConfig config = quiet_config();
  const DiffractionGenerator g1(config), g2(config);
  ASSERT_EQ(g1.class_patterns().size(), g2.class_patterns().size());
  for (std::size_t k = 0; k < g1.class_patterns().size(); ++k) {
    for (std::size_t q = 0; q < 4; ++q) {
      EXPECT_EQ(g1.class_patterns()[k][q], g2.class_patterns()[k][q]);
    }
  }
}

TEST(Diffraction, LabelWithinRange) {
  const DiffractionConfig config = quiet_config();
  const DiffractionGenerator gen(config);
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const DiffractionSample s = gen.generate(rng);
    EXPECT_GE(s.truth.class_label, 0);
    EXPECT_LT(s.truth.class_label,
              static_cast<int>(config.num_classes));
  }
}

TEST(Diffraction, BeamStopMasksCenter) {
  const DiffractionConfig config = quiet_config();
  const DiffractionGenerator gen(config);
  Rng rng(2);
  const DiffractionSample s = gen.generate(rng);
  const std::size_t cy = config.height / 2;
  const std::size_t cx = config.width / 2;
  EXPECT_EQ(s.frame.at(cy, cx), 0.0);
}

TEST(Diffraction, RingAtRequestedRadius) {
  const DiffractionConfig config = quiet_config();
  const DiffractionGenerator gen(config);
  Rng rng(3);
  const DiffractionSample s = gen.generate(rng);
  // Intensity-weighted mean radius ≈ configured ring radius.
  const double cy = (static_cast<double>(config.height) - 1.0) / 2.0;
  const double cx = (static_cast<double>(config.width) - 1.0) / 2.0;
  double wr = 0.0, w = 0.0;
  for (std::size_t y = 0; y < config.height; ++y) {
    for (std::size_t x = 0; x < config.width; ++x) {
      const double v = s.frame.at(y, x);
      if (v <= 0.0) continue;
      const double dy = static_cast<double>(y) - cy;
      const double dx = static_cast<double>(x) - cx;
      wr += v * std::sqrt(dy * dy + dx * dx);
      w += v;
    }
  }
  const double expected = config.ring_radius_frac *
                          static_cast<double>(config.width);
  EXPECT_NEAR(wr / w, expected, 0.1 * expected);
}

TEST(Diffraction, QuadrantMassTracksWeights) {
  const DiffractionConfig config = quiet_config();
  const DiffractionGenerator gen(config);
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    const DiffractionSample s = gen.generate(rng);
    const auto mass = quadrant_mass(s.frame);
    // The heaviest truth quadrant must carry the most ring mass.
    std::size_t truth_max = 0, mass_max = 0;
    for (std::size_t q = 1; q < 4; ++q) {
      if (s.truth.quadrant_weights[q] >
          s.truth.quadrant_weights[truth_max]) {
        truth_max = q;
      }
      if (mass[q] > mass[mass_max]) mass_max = q;
    }
    EXPECT_EQ(mass_max, truth_max);
  }
}

TEST(Diffraction, PoissonNoiseQuantizesCounts) {
  DiffractionConfig config = quiet_config();
  config.photons_per_frame = 5000.0;
  const DiffractionGenerator gen(config);
  Rng rng(5);
  const DiffractionSample s = gen.generate(rng);
  for (const double p : s.frame.pixels()) {
    EXPECT_EQ(p, std::floor(p));  // integer photon counts
    EXPECT_GE(p, 0.0);
  }
  EXPECT_NEAR(s.frame.total_intensity(), 5000.0, 500.0);
}

TEST(Diffraction, BatchCountAndClassCoverage) {
  const DiffractionConfig config = quiet_config();
  const DiffractionGenerator gen(config);
  Rng rng(6);
  const auto batch = gen.generate_batch(200, rng);
  EXPECT_EQ(batch.size(), 200u);
  std::array<int, 4> seen{};
  for (const auto& s : batch) {
    ++seen[static_cast<std::size_t>(s.truth.class_label)];
  }
  for (const int c : seen) {
    EXPECT_GT(c, 20);  // uniform class draw covers all four classes
  }
}

TEST(Diffraction, ClassPatternsAreDistinct) {
  const DiffractionConfig config = quiet_config();
  const DiffractionGenerator gen(config);
  const auto& patterns = gen.class_patterns();
  for (std::size_t a = 0; a < patterns.size(); ++a) {
    for (std::size_t b = a + 1; b < patterns.size(); ++b) {
      double diff = 0.0;
      for (std::size_t q = 0; q < 4; ++q) {
        diff += std::abs(patterns[a][q] - patterns[b][q]);
      }
      EXPECT_GT(diff, 0.3);
    }
  }
}

}  // namespace
}  // namespace arams::data
