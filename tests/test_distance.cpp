// Shared distance engine (embed/distance.hpp): GEMM-backed blocks must
// match the naive per-pair loops to rounding, parallel and serial runs must
// agree bitwise, and workspace-backed steady-state calls must not allocate.
//
// The allocation check overrides global operator new/delete in this
// translation unit only (each gtest binary is its own process, so the
// override is hermetic) — same pattern as test_workspace.cpp.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>

#include "embed/distance.hpp"
#include "embed/knn.hpp"
#include "embed/metrics.hpp"
#include "embed/umap.hpp"
#include "linalg/matrix.hpp"
#include "linalg/workspace.hpp"
#include "rng/rng.hpp"

namespace {
std::atomic<long> g_heap_allocations{0};

// The engine's parallel paths go through the shared pool, whose size is
// frozen on first use — pin it before any test touches it so the
// parallel-vs-serial cases exercise real multi-thread execution even on a
// single-core CI box.
const int g_pool_env = ::setenv("ARAMS_POOL_THREADS", "4", 0);
}  // namespace

void* operator new(std::size_t n) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t n, std::align_val_t a) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(a), n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace arams::embed {
namespace {

using linalg::Matrix;
using linalg::MatrixView;
using linalg::Workspace;

Matrix random_points(std::size_t n, std::size_t d, std::uint64_t seed) {
  Matrix m(n, d);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) rng.fill_normal(m.row(i));
  return m;
}

void expect_rel_close(const Matrix& got, const Matrix& want, double tol) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (std::size_t i = 0; i < got.rows(); ++i) {
    for (std::size_t j = 0; j < got.cols(); ++j) {
      const double scale = std::max(1.0, std::abs(want(i, j)));
      EXPECT_NEAR(got(i, j), want(i, j), tol * scale)
          << "at (" << i << ", " << j << ")";
    }
  }
}

TEST(Distance, SqDistMatchesHandComputed) {
  const double a[] = {1.0, 2.0, -3.0};
  const double b[] = {0.0, 2.5, -1.0};
  EXPECT_DOUBLE_EQ(sq_dist(a, b), 1.0 + 0.25 + 4.0);
}

TEST(Distance, GemmMatchesNaiveOnOddShapes) {
  // Deliberately awkward shapes: single elements, non-multiples of every
  // register/block size, degenerate inner dimension.
  const struct {
    std::size_t xr, yr, d;
  } shapes[] = {{7, 13, 5}, {1, 1, 1}, {33, 17, 3}, {5, 9, 1}, {4, 130, 2}};
  for (const auto& s : shapes) {
    const Matrix x = random_points(s.xr, s.d, 101 + s.xr);
    const Matrix y = random_points(s.yr, s.d, 202 + s.yr);
    Workspace ws;
    Matrix fast, ref;
    pairwise_sq_dists(x, y, ws, fast, {.use_gemm = true});
    pairwise_sq_dists(x, y, ws, ref, {.use_gemm = false});
    expect_rel_close(fast, ref, 1e-10);
  }
}

TEST(Distance, GemmMatchesNaiveOnRowViews) {
  // Views into the middle of a larger buffer — the shape the blocked kNN
  // loop feeds the engine.
  const Matrix parent = random_points(60, 6, 77);
  const MatrixView x = MatrixView::rows_of(parent, 11, 30);
  const MatrixView y = MatrixView::rows_of(parent, 3, 58);
  Workspace ws;
  Matrix fast, ref;
  pairwise_sq_dists(x, y, ws, fast, {.use_gemm = true});
  pairwise_sq_dists(x, y, ws, ref, {.use_gemm = false});
  expect_rel_close(fast, ref, 1e-10);
}

TEST(Distance, SelfBlockDiagonalIsZero) {
  const Matrix x = random_points(40, 7, 5);
  Workspace ws;
  Matrix d;
  pairwise_sq_dists(x, x, ws, d, {});
  for (std::size_t i = 0; i < x.rows(); ++i) {
    // The Gram trick can produce tiny negatives on exact-zero distances;
    // the engine clamps them.
    EXPECT_GE(d(i, i), 0.0);
    EXPECT_LT(d(i, i), 1e-10);
  }
}

TEST(Distance, ParallelAndSerialBlocksAreBitwiseIdentical) {
  // 600×600×40 clears both the GEMM flop threshold and the fix-up element
  // threshold, so the parallel run really fans out across the pinned
  // 4-thread pool. Disjoint row bands with identical per-element
  // accumulation order must reproduce the serial block exactly.
  const Matrix x = random_points(600, 40, 31);
  const Matrix y = random_points(600, 40, 32);
  Workspace ws;
  Matrix par, ser;
  pairwise_sq_dists(x, y, ws, par, {.use_gemm = true, .allow_parallel = true});
  pairwise_sq_dists(x, y, ws, ser,
                    {.use_gemm = true, .allow_parallel = false});
  ASSERT_EQ(par.rows(), ser.rows());
  for (std::size_t i = 0; i < par.rows(); ++i) {
    for (std::size_t j = 0; j < par.cols(); ++j) {
      EXPECT_EQ(par(i, j), ser(i, j)) << "at (" << i << ", " << j << ")";
    }
  }
}

TEST(Distance, GramPlusFixupEqualsDistanceBlock) {
  // The fused-consumer contract: pairwise_gram + the documented fix-up
  // expression must reproduce pairwise_sq_dists bit for bit (exact_knn's
  // fused selection relies on this).
  const Matrix x = random_points(37, 8, 55);
  const Matrix y = random_points(23, 8, 56);
  std::vector<double> xn(x.rows()), yn(y.rows());
  row_sq_norms(x, xn);
  row_sq_norms(y, yn);
  Workspace ws;
  Matrix gram, dist;
  pairwise_gram(x, y, gram);
  pairwise_sq_dists_prenormed(x, y, xn, yn, ws, dist,
                              {.allow_parallel = false});
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < y.rows(); ++j) {
      const double fused = std::max(0.0, xn[i] + yn[j] - 2.0 * gram(i, j));
      EXPECT_EQ(fused, dist(i, j)) << "at (" << i << ", " << j << ")";
    }
  }
}

TEST(Distance, SteadyStateBlocksAreAllocationFree) {
  const Matrix x = random_points(64, 12, 91);
  const Matrix y = random_points(48, 12, 92);
  Workspace ws;
  Matrix out;
  const DistanceOptions opts{.use_gemm = true, .allow_parallel = false};
  // Warm-up grows the workspace slots, the output block, the GEMM packing
  // scratch, and the metric registrations.
  pairwise_sq_dists(x, y, ws, out, opts);
  pairwise_sq_dists(x, y, ws, out, opts);
  const long before = g_heap_allocations.load();
  for (int i = 0; i < 20; ++i) {
    pairwise_sq_dists(x, y, ws, out, opts);
  }
  EXPECT_EQ(g_heap_allocations.load() - before, 0)
      << "engine allocated at steady state";
}

TEST(Distance, ExactKnnSteadyStateIsAllocationFree) {
  const Matrix pts = random_points(200, 10, 93);
  Workspace ws;
  KnnGraph g;
  const DistanceOptions opts{.use_gemm = true, .allow_parallel = false};
  exact_knn(pts, 8, ws, g, opts);
  exact_knn(pts, 8, ws, g, opts);
  const long before = g_heap_allocations.load();
  for (int i = 0; i < 10; ++i) {
    exact_knn(pts, 8, ws, g, opts);
  }
  EXPECT_EQ(g_heap_allocations.load() - before, 0)
      << "workspace-backed exact_knn allocated at steady state";
}

TEST(Distance, ExactKnnEngineMatchesScalarPath) {
  // Same graph, both arithmetics: identical neighbour sets and distances
  // to rounding. n·d is large enough that blocking/selection run their
  // real paths, with shapes that don't divide the block size.
  const Matrix pts = random_points(500, 9, 44);
  Workspace ws;
  KnnGraph fast, ref;
  exact_knn(pts, 7, ws, fast, {.use_gemm = true});
  exact_knn(pts, 7, ws, ref, {.use_gemm = false});
  ASSERT_EQ(fast.n, ref.n);
  for (std::size_t i = 0; i < fast.n; ++i) {
    for (std::size_t j = 0; j < fast.k; ++j) {
      EXPECT_EQ(fast.neighbor(i, j), ref.neighbor(i, j))
          << "at (" << i << ", " << j << ")";
      EXPECT_NEAR(fast.distance(i, j), ref.distance(i, j),
                  1e-9 * std::max(1.0, ref.distance(i, j)));
    }
  }
}

TEST(Distance, ExactKnnParallelSelectionMatchesSerial) {
  // 2048×16 clears the selection parallel threshold (2048·2048 elements
  // per full sweep); band-partitioned selection must produce the same
  // graph as the serial scan.
  const Matrix pts = random_points(2048, 16, 45);
  Workspace ws;
  KnnGraph par, ser;
  exact_knn(pts, 10, ws, par, {.use_gemm = true, .allow_parallel = true});
  exact_knn(pts, 10, ws, ser, {.use_gemm = true, .allow_parallel = false});
  EXPECT_EQ(par.neighbors, ser.neighbors);
  EXPECT_EQ(par.distances, ser.distances);
}

TEST(Distance, NnDescentGramScoringTracksScalarRecall) {
  // Gram-scored candidate joins change only the rounding of candidate
  // distances, so recall against the exact graph must stay within noise of
  // the scalar path's.
  const Matrix pts = random_points(400, 8, 46);
  Workspace ws;
  KnnGraph exact;
  exact_knn(pts, 10, ws, exact, {});
  Rng rng_a(47);
  KnnGraph gram_graph;
  nn_descent(pts, 10, rng_a, ws, gram_graph, 8, 1.0, {.use_gemm = true});
  Rng rng_b(47);
  KnnGraph scalar_graph;
  nn_descent(pts, 10, rng_b, ws, scalar_graph, 8, 1.0, {.use_gemm = false});
  const double gram_recall = knn_recall(gram_graph, exact);
  const double scalar_recall = knn_recall(scalar_graph, exact);
  EXPECT_NEAR(gram_recall, scalar_recall, 0.02);
  EXPECT_GT(gram_recall, 0.9);
}

TEST(Distance, UmapThroughEngineKeepsTrustworthiness) {
  // Three well-separated Gaussian blobs, the synthetic stand-in for
  // clustered beam-profile latents: the engine-backed kNN + transform
  // pipeline must keep UMAP's neighbourhood preservation at the level the
  // seed implementation's tests demanded (test_umap.cpp uses 0.7).
  Matrix pts(120, 6);
  Rng rng(48);
  for (std::size_t i = 0; i < pts.rows(); ++i) {
    const double center = static_cast<double>(i % 3) * 25.0;
    for (auto& v : pts.row(i)) v = center + rng.normal();
  }
  UmapConfig config;
  config.n_neighbors = 10;
  config.n_epochs = 150;
  Workspace ws;
  const Matrix y = umap_embed(pts, config, ws);
  EXPECT_GT(trustworthiness(pts, y, 8), 0.7);
}

TEST(Distance, BatchOptimizerIsDeterministic) {
  const Matrix pts = random_points(90, 5, 49);
  UmapConfig config;
  config.n_neighbors = 8;
  config.n_epochs = 60;
  config.optimizer = UmapConfig::Optimizer::kBatchParallel;
  Workspace ws;
  const Matrix a = umap_embed(pts, config, ws);
  const Matrix b = umap_embed(pts, config, ws);
  ASSERT_EQ(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      EXPECT_EQ(a(i, j), b(i, j)) << "at (" << i << ", " << j << ")";
    }
  }
}

}  // namespace
}  // namespace arams::embed
