// Integration tests: the full Fig. 4 monitoring pipeline end to end on both
// synthetic LCLS workloads.

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/metrics.hpp"
#include "embed/metrics.hpp"
#include "image/image.hpp"
#include "linalg/blas.hpp"
#include "stream/pipeline.hpp"
#include "stream/source.hpp"
#include "util/check.hpp"

namespace arams::stream {
namespace {

PipelineConfig fast_pipeline() {
  PipelineConfig config;
  config.sketch.ell = 12;
  config.sketch.rank_adaptive = false;
  config.sketch.use_sampling = true;
  config.sketch.beta = 0.9;
  config.num_cores = 2;
  config.pca_components = 8;
  config.umap.n_neighbors = 10;
  config.umap.n_epochs = 120;
  config.optics.min_pts = 5;
  config.abod_k = 8;
  return config;
}

TEST(Pipeline, ValidatesConfig) {
  PipelineConfig config = fast_pipeline();
  config.num_cores = 0;
  EXPECT_THROW(MonitoringPipeline{config}, CheckError);
  config = fast_pipeline();
  config.pca_components = 0;
  EXPECT_THROW(MonitoringPipeline{config}, CheckError);
}

TEST(Pipeline, ValidateReportsEveryProblem) {
  PipelineConfig config = fast_pipeline();
  EXPECT_TRUE(config.validate().empty());
  config.num_cores = 0;
  config.pca_components = 0;
  config.sketch.ell = 1;
  const std::vector<std::string> errors = config.validate();
  EXPECT_GE(errors.size(), 3u);  // all problems listed, not just the first
  for (const auto& e : errors) {
    EXPECT_FALSE(e.empty());
  }
}

TEST(Pipeline, EmptyInputThrows) {
  const MonitoringPipeline pipeline(fast_pipeline());
  EXPECT_THROW(pipeline.analyze(std::vector<image::ImageF>{}), CheckError);
}

TEST(Pipeline, BeamProfileEndToEndShapes) {
  data::BeamProfileConfig beam;
  beam.height = 24;
  beam.width = 24;
  BeamProfileSource source(beam, 120, 120.0, 1);
  const auto events = drain(source, 120);

  const MonitoringPipeline pipeline(fast_pipeline());
  const PipelineResult result = pipeline.analyze_events(events);

  EXPECT_EQ(result.latent.rows(), 120u);
  EXPECT_EQ(result.latent.cols(), 8u);
  EXPECT_EQ(result.embedding.rows(), 120u);
  EXPECT_EQ(result.embedding.cols(), 2u);
  EXPECT_EQ(result.labels.size(), 120u);
  EXPECT_EQ(result.outlier_scores.size(), 120u);
  EXPECT_GT(result.sketch.rows(), 0u);
  EXPECT_GT(result.sketch_seconds(), 0.0);
  EXPECT_GT(result.embed_seconds(), 0.0);

  // Event entry point carries shot ids through to the result rows.
  ASSERT_EQ(result.shot_ids.size(), 120u);
  EXPECT_EQ(result.shot_ids.front(), events.front().shot_id);
  EXPECT_EQ(result.shot_ids.back(), events.back().shot_id);

  // Every Fig. 4 stage reports its wall-clock through the StageReport.
  for (const char* stage :
       {"preprocess", "sketch", "project", "embed", "cluster"}) {
    EXPECT_TRUE(result.report.has_stage(stage)) << stage;
  }
  EXPECT_GT(result.report.counter("svd_count"), 0);
}

TEST(Pipeline, DiffractionClassesRecovered) {
  data::DiffractionConfig diff;
  diff.height = 32;
  diff.width = 32;
  diff.num_classes = 3;
  diff.photons_per_frame = 4e4;
  DiffractionSource source(diff, 180, 120.0, 2);
  const auto events = drain(source, 180);
  std::vector<int> truth;
  truth.reserve(events.size());
  for (const auto& e : events) truth.push_back(e.truth_label);

  PipelineConfig config = fast_pipeline();
  config.preprocess.center = false;  // rings are already centered
  const MonitoringPipeline pipeline(config);
  const PipelineResult result = pipeline.analyze_events(events);

  // The unsupervised clusters must align with the latent classes well
  // above chance (the Fig. 6 claim, quantified).
  const double ari = cluster::adjusted_rand_index(result.labels, truth);
  EXPECT_GT(ari, 0.5);
}

TEST(Pipeline, MatrixEntryPointSkipsPreprocessing) {
  linalg::Matrix rows(60, 30);
  Rng rng(3);
  for (std::size_t i = 0; i < 60; ++i) {
    rng.fill_normal(rows.row(i));
  }
  PipelineConfig config = fast_pipeline();
  config.umap.n_neighbors = 8;
  const MonitoringPipeline pipeline(config);
  const PipelineResult result = pipeline.analyze_matrix(rows);
  EXPECT_EQ(result.preprocess_seconds(), 0.0);
  EXPECT_EQ(result.embedding.rows(), 60u);
}

TEST(Pipeline, MoreCoresSameQuality) {
  data::BeamProfileConfig beam;
  beam.height = 20;
  beam.width = 20;
  BeamProfileSource source(beam, 96, 120.0, 4);
  const auto events = drain(source, 96);

  PipelineConfig one = fast_pipeline();
  one.num_cores = 1;
  PipelineConfig four = fast_pipeline();
  four.num_cores = 4;

  const PipelineResult r1 = MonitoringPipeline(one).analyze_events(events);
  const PipelineResult r4 = MonitoringPipeline(four).analyze_events(events);
  // Both runs preserve neighbourhood structure comparably.
  const double t1 =
      embed::trustworthiness(r1.latent, r1.embedding, 8);
  const double t4 =
      embed::trustworthiness(r4.latent, r4.embedding, 8);
  EXPECT_GT(t1, 0.75);
  EXPECT_GT(t4, 0.75);
  // The 4-core run actually merged sketches.
  EXPECT_GT(r4.merge_stats().merge_ops, 0);
}

TEST(Pipeline, AbodDisabledWhenKZero) {
  linalg::Matrix rows(40, 10);
  Rng rng(5);
  for (std::size_t i = 0; i < 40; ++i) {
    rng.fill_normal(rows.row(i));
  }
  PipelineConfig config = fast_pipeline();
  config.abod_k = 0;
  config.umap.n_neighbors = 8;
  const PipelineResult result =
      MonitoringPipeline(config).analyze_matrix(rows);
  EXPECT_TRUE(result.outlier_scores.empty());
}

TEST(Pipeline, HdbscanBackendRecoversClasses) {
  data::DiffractionConfig diff;
  diff.height = 32;
  diff.width = 32;
  diff.num_classes = 3;
  diff.photons_per_frame = 4e4;
  DiffractionSource source(diff, 180, 120.0, 7);
  const auto events = drain(source, 180);
  std::vector<int> truth;
  for (const auto& e : events) truth.push_back(e.truth_label);

  PipelineConfig config = fast_pipeline();
  config.cluster_method = PipelineConfig::ClusterMethod::kHdbscan;
  config.preprocess.center = false;
  const PipelineResult result =
      MonitoringPipeline(config).analyze_events(events);
  EXPECT_GT(cluster::adjusted_rand_index(result.labels, truth), 0.5);
}

TEST(Pipeline, KmeansBackendRecoversClassesAtKnownK) {
  data::DiffractionConfig diff;
  diff.height = 32;
  diff.width = 32;
  diff.num_classes = 3;
  diff.photons_per_frame = 4e4;
  // ARI on this chaotic UMAP→kmeans chain swings ~0.55–1.0 across data
  // seeds regardless of numerics; this seed separates cleanly, leaving the
  // 0.6 gate margin against benign perturbations (e.g. a different but
  // equally valid eigenbasis from the symmetric eigensolver).
  DiffractionSource source(diff, 150, 120.0, 7);
  const auto events = drain(source, 150);
  std::vector<int> truth;
  for (const auto& e : events) truth.push_back(e.truth_label);

  PipelineConfig config = fast_pipeline();
  config.cluster_method = PipelineConfig::ClusterMethod::kKmeans;
  config.kmeans.k = 3;
  config.preprocess.center = false;
  const PipelineResult result =
      MonitoringPipeline(config).analyze_events(events);
  EXPECT_EQ(cluster::cluster_count(result.labels), 3u);
  EXPECT_GT(cluster::adjusted_rand_index(result.labels, truth), 0.6);
}

TEST(Pipeline, ThreadedShardingMatchesShapes) {
  linalg::Matrix rows(80, 20);
  Rng rng(8);
  for (std::size_t i = 0; i < 80; ++i) {
    rng.fill_normal(rows.row(i));
  }
  PipelineConfig config = fast_pipeline();
  config.use_threads = true;
  config.num_cores = 4;
  config.umap.n_neighbors = 8;
  const PipelineResult result =
      MonitoringPipeline(config).analyze_matrix(rows);
  EXPECT_EQ(result.embedding.rows(), 80u);
  EXPECT_GT(result.merge_stats().merge_ops, 0);
}

TEST(Pipeline, F32FramesRunEndToEnd) {
  // The mixed-precision ingest lane through the frame entry point: fp32
  // frames preprocess in fp32 and enter the sketcher through its fp32
  // seam; every downstream stage (PCA/UMAP/cluster) is unchanged fp64.
  data::BeamProfileConfig beam;
  beam.height = 24;
  beam.width = 24;
  BeamProfileSource source(beam, 100, 120.0, 11);
  const auto events = drain(source, 100);
  std::vector<image::ImageF32> frames;
  frames.reserve(events.size());
  for (const auto& e : events) frames.push_back(image::narrow(e.frame));

  const MonitoringPipeline pipeline(fast_pipeline());
  const PipelineResult result = pipeline.analyze(frames);
  EXPECT_EQ(result.latent.rows(), 100u);
  EXPECT_EQ(result.embedding.rows(), 100u);
  EXPECT_EQ(result.labels.size(), 100u);
  EXPECT_GT(result.sketch.rows(), 0u);
  EXPECT_GT(result.preprocess_seconds(), 0.0);
  // The lane's audit trail: every row went through the fp32 seam.
  EXPECT_EQ(result.report.counter("rows_ingested_f32"), 100);
  EXPECT_THROW(pipeline.analyze(std::vector<image::ImageF32>{}), CheckError);
}

TEST(Pipeline, IngestPrecisionF32NarrowsAtTheDoor) {
  // Same fp64 frames through both configs: kF32 must narrow on entry and
  // land within the lane's pinned drift budget of the fp64 run.
  data::BeamProfileConfig beam;
  beam.height = 24;
  beam.width = 24;
  BeamProfileSource source(beam, 80, 120.0, 12);
  const auto events = drain(source, 80);
  std::vector<image::ImageF> frames;
  frames.reserve(events.size());
  for (const auto& e : events) frames.push_back(e.frame);

  // Pin the backend to fd so both lanes run the same single-sketcher
  // algorithm: with arams the fp64 lane shards + tree-merges and draws
  // different sampling decisions, a structural (not precision) difference.
  PipelineConfig f64_config = fast_pipeline();
  f64_config.sketcher = "fd";
  PipelineConfig f32_config = f64_config;
  f32_config.ingest_precision = PipelineConfig::IngestPrecision::kF32;
  const PipelineResult r32 = MonitoringPipeline(f32_config).analyze(frames);
  const PipelineResult r64 = MonitoringPipeline(f64_config).analyze(frames);
  EXPECT_EQ(r32.report.counter("rows_ingested_f32"), 80);
  EXPECT_EQ(r64.report.counter("rows_ingested_f32"), 0);
  ASSERT_EQ(r32.embedding.rows(), r64.embedding.rows());
  // Compare the covariance estimates the sketches carry (the embeddings
  // themselves go through UMAP's stochastic optimizer, where a one-ulp
  // input difference is amplified arbitrarily).
  const linalg::Matrix g32 = linalg::gram_cols(r32.sketch);
  const linalg::Matrix g64 = linalg::gram_cols(r64.sketch);
  ASSERT_EQ(g32.rows(), g64.rows());
  EXPECT_LE(linalg::Matrix::max_abs_diff(g32, g64),
            1e-5 * (1.0 + linalg::frobenius_norm(g64)));
}

TEST(Pipeline, F32MatrixEntryPointSkipsPreprocessing) {
  linalg::MatrixF rows(60, 30);
  Rng rng(13);
  std::vector<double> scratch(30);
  for (std::size_t i = 0; i < 60; ++i) {
    rng.fill_normal(scratch);
    auto dst = rows.row(i);
    for (std::size_t j = 0; j < 30; ++j) {
      dst[j] = static_cast<float>(scratch[j]);
    }
  }
  PipelineConfig config = fast_pipeline();
  config.umap.n_neighbors = 8;
  const MonitoringPipeline pipeline(config);
  const PipelineResult result =
      pipeline.analyze_matrix(linalg::MatrixViewF(rows));
  EXPECT_EQ(result.preprocess_seconds(), 0.0);
  EXPECT_EQ(result.embedding.rows(), 60u);
  EXPECT_EQ(result.report.counter("rows_ingested_f32"), 60);
}

TEST(Pipeline, RankAdaptiveModeRunsEndToEnd) {
  linalg::Matrix rows(150, 25);
  Rng rng(6);
  for (std::size_t i = 0; i < 150; ++i) {
    rng.fill_normal(rows.row(i));
  }
  PipelineConfig config = fast_pipeline();
  config.sketch.rank_adaptive = true;
  config.sketch.ell = 8;
  config.sketch.epsilon = 0.15;
  const PipelineResult result =
      MonitoringPipeline(config).analyze_matrix(rows);
  EXPECT_GE(result.final_ell, 8u);
  EXPECT_EQ(result.embedding.rows(), 150u);
}

}  // namespace
}  // namespace arams::stream
