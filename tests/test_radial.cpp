// Radial / azimuthal detector reductions: ring recovery from the
// diffraction generator, known-geometry profiles, argument validation.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "data/diffraction.hpp"
#include "image/radial.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace arams::image {
namespace {

ImageF ring_frame(std::size_t size, double radius, double width) {
  ImageF img(size, size);
  const double c = (static_cast<double>(size) - 1.0) / 2.0;
  for (std::size_t y = 0; y < size; ++y) {
    for (std::size_t x = 0; x < size; ++x) {
      const double dy = static_cast<double>(y) - c;
      const double dx = static_cast<double>(x) - c;
      const double r = std::sqrt(dx * dx + dy * dy);
      img.at(y, x) = std::exp(-(r - radius) * (r - radius) /
                              (2.0 * width * width));
    }
  }
  return img;
}

TEST(RadialProfile, ValidatesArguments) {
  const ImageF img(16, 16);
  EXPECT_THROW(radial_profile(img, 7.5, 7.5, 0), CheckError);
  EXPECT_THROW(radial_profile(img, 0.0, 7.5, 8), CheckError);
}

TEST(RadialProfile, UniformFrameIsFlat) {
  ImageF img(32, 32);
  for (auto& p : img.pixels()) p = 3.0;
  const auto c = frame_center(img);
  const RadialProfile profile = radial_profile(img, c.y, c.x, 10);
  for (std::size_t b = 0; b < 10; ++b) {
    if (profile.counts[b] > 0) {
      EXPECT_NEAR(profile.intensity[b], 3.0, 1e-12);
    }
  }
}

TEST(RadialProfile, PeakAtRingRadius) {
  const ImageF img = ring_frame(64, 18.0, 1.5);
  const auto c = frame_center(img);
  const RadialProfile profile = radial_profile(img, c.y, c.x, 30);
  EXPECT_NEAR(peak_radius(profile), 18.0, 1.2);
}

TEST(RadialProfile, BinsCoverAllInteriorPixels) {
  const ImageF img = ring_frame(32, 8.0, 2.0);
  const auto c = frame_center(img);
  const RadialProfile profile = radial_profile(img, c.y, c.x, 8);
  long total = 0;
  for (const long n : profile.counts) total += n;
  // Every pixel inside the inscribed circle lands in exactly one bin.
  EXPECT_GT(total, static_cast<long>(0.7 * 3.14159 * 15.5 * 15.5));
}

TEST(AzimuthalProfile, UniformRingIsFlat) {
  const ImageF img = ring_frame(64, 18.0, 1.5);
  const auto c = frame_center(img);
  const AzimuthalProfile profile =
      azimuthal_profile(img, c.y, c.x, 15.0, 21.0, 12);
  double mn = 1e300, mx = 0.0;
  for (std::size_t b = 0; b < 12; ++b) {
    mn = std::min(mn, profile.intensity[b]);
    mx = std::max(mx, profile.intensity[b]);
  }
  EXPECT_LT((mx - mn) / mx, 0.15);
}

TEST(AzimuthalProfile, ValidatesAnnulus) {
  const ImageF img(16, 16);
  EXPECT_THROW(azimuthal_profile(img, 7.5, 7.5, 5.0, 5.0, 8), CheckError);
  EXPECT_THROW(azimuthal_profile(img, 7.5, 7.5, 2.0, 5.0, 0), CheckError);
}

TEST(AzimuthalProfile, HalfMoonShowsUp) {
  // Ring with intensity only for angles in [0, π): the first half of the
  // angular bins must carry essentially all the mass.
  ImageF img(64, 64);
  const double c = 31.5;
  for (std::size_t y = 0; y < 64; ++y) {
    for (std::size_t x = 0; x < 64; ++x) {
      const double dy = static_cast<double>(y) - c;
      const double dx = static_cast<double>(x) - c;
      const double r = std::sqrt(dx * dx + dy * dy);
      double theta = std::atan2(dy, dx);
      if (theta < 0.0) theta += 2.0 * std::numbers::pi;
      if (r > 15.0 && r < 20.0 && theta < std::numbers::pi) {
        img.at(y, x) = 1.0;
      }
    }
  }
  const AzimuthalProfile profile =
      azimuthal_profile(img, c, c, 15.0, 20.0, 8);
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_GT(profile.intensity[b], 0.8);
  }
  for (std::size_t b = 4; b < 8; ++b) {
    EXPECT_LT(profile.intensity[b], 0.2);
  }
}

TEST(QuadrantWeights, RecoverGeneratorTruth) {
  data::DiffractionConfig config;
  config.height = 64;
  config.width = 64;
  config.photons_per_frame = 0.0;  // noise-free
  config.weight_jitter = 0.0;
  config.radius_jitter = 0.0;
  const data::DiffractionGenerator gen(config);
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    const auto sample = gen.generate(rng);
    const auto c = frame_center(sample.frame);
    const double ring_r =
        config.ring_radius_frac * static_cast<double>(config.width);
    const auto weights = quadrant_weights(sample.frame, c.y, c.x,
                                          ring_r - 4.0, ring_r + 4.0);
    // Normalized truth.
    double truth_total = 0.0;
    for (const double w : sample.truth.quadrant_weights) truth_total += w;
    // The smooth angular blend mixes neighbouring quadrants; the heaviest
    // quadrant must still match and magnitudes stay close.
    std::size_t truth_max = 0, measured_max = 0;
    for (std::size_t q = 1; q < 4; ++q) {
      if (sample.truth.quadrant_weights[q] >
          sample.truth.quadrant_weights[truth_max]) {
        truth_max = q;
      }
      if (weights[q] > weights[measured_max]) measured_max = q;
    }
    EXPECT_EQ(measured_max, truth_max);
    for (std::size_t q = 0; q < 4; ++q) {
      EXPECT_NEAR(weights[q],
                  sample.truth.quadrant_weights[q] / truth_total, 0.08);
    }
  }
}

TEST(QuadrantWeights, EmptyAnnulusGivesZeros) {
  const ImageF img(32, 32);  // all-zero frame
  const auto c = frame_center(img);
  const auto weights = quadrant_weights(img, c.y, c.x, 5.0, 10.0);
  for (const double w : weights) {
    EXPECT_EQ(w, 0.0);
  }
}

}  // namespace
}  // namespace arams::image
