// Baseline sketchers: unbiasedness of the random methods, iSVD behaviour
// (including the adversarial stream FD survives and iSVD does not), and
// the factory.

#include <gtest/gtest.h>

#include <cmath>

#include "core/baselines.hpp"
#include "core/fd.hpp"
#include "data/synthetic.hpp"
#include "linalg/blas.hpp"
#include "linalg/norms.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace arams::core {
namespace {

using linalg::Matrix;

Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  Matrix m(r, c);
  Rng rng(seed);
  for (std::size_t i = 0; i < r; ++i) rng.fill_normal(m.row(i));
  return m;
}

TEST(Baselines, FactoryKnowsEveryName) {
  for (const char* name :
       {"fd", "gaussian", "countsketch", "normsample", "isvd"}) {
    const auto sketcher = make_sketcher(name, 8, 1);
    ASSERT_NE(sketcher, nullptr);
    EXPECT_EQ(sketcher->name(), name);
  }
  EXPECT_THROW(make_sketcher("typo", 8, 1), CheckError);
}

TEST(Baselines, LegacyAliasesResolveToCanonicalNames) {
  EXPECT_EQ(make_sketcher("gaussian-projection", 8, 1)->name(), "gaussian");
  EXPECT_EQ(make_sketcher("count-sketch", 8, 1)->name(), "countsketch");
  EXPECT_EQ(make_sketcher("norm-sampling", 8, 1)->name(), "normsample");
}

class BaselineKinds : public ::testing::TestWithParam<const char*> {};

TEST_P(BaselineKinds, SketchHasBoundedRowsAndRightWidth) {
  const auto sketcher = make_sketcher(GetParam(), 10, 2);
  const Matrix a = random_matrix(80, 24, 3);
  sketcher->push_batch(a);
  const Matrix b = sketcher->sketch();
  EXPECT_LE(b.rows(), 10u);
  EXPECT_EQ(b.cols(), 24u);
}

TEST_P(BaselineKinds, ReasonableCovarianceApproximation) {
  // Every baseline should approximate AᵀA on benign low-rank data —
  // relative spectral error far below 1 at ℓ well above the rank.
  data::SyntheticConfig dc;
  dc.n = 300;
  dc.d = 30;
  dc.spectrum.kind = data::DecayKind::kExponential;
  dc.spectrum.count = 10;
  dc.spectrum.rate = 0.5;
  Rng rng(4);
  const Matrix a = data::make_low_rank(dc, rng);

  const auto sketcher = make_sketcher(GetParam(), 24, 5);
  sketcher->push_batch(a);
  const Matrix b = sketcher->sketch();
  Rng power(6);
  const double rel = linalg::covariance_error_relative(a, b, power, 80);
  EXPECT_LT(rel, 0.6);
}

INSTANTIATE_TEST_SUITE_P(Kinds, BaselineKinds,
                         ::testing::Values("fd", "gaussian", "countsketch",
                                           "normsample", "isvd"));

TEST(GaussianProjection, CovarianceUnbiasedOverSeeds) {
  const Matrix a = random_matrix(40, 5, 7);
  const Matrix target = linalg::gram_cols(a);
  Matrix mean(5, 5);
  constexpr int kReps = 400;
  for (int rep = 0; rep < kReps; ++rep) {
    GaussianProjectionSketch sketcher(16, static_cast<std::uint64_t>(rep));
    sketcher.push_batch(a);
    const Matrix g = linalg::gram_cols(sketcher.sketch());
    for (std::size_t i = 0; i < 5; ++i) {
      for (std::size_t j = 0; j < 5; ++j) {
        mean(i, j) += g(i, j) / kReps;
      }
    }
  }
  EXPECT_LT(Matrix::max_abs_diff(mean, target),
            0.15 * linalg::frobenius_norm(target));
}

TEST(CountSketchTest, CovarianceUnbiasedOverSeeds) {
  const Matrix a = random_matrix(30, 4, 8);
  const Matrix target = linalg::gram_cols(a);
  Matrix mean(4, 4);
  constexpr int kReps = 500;
  for (int rep = 0; rep < kReps; ++rep) {
    CountSketch sketcher(12, static_cast<std::uint64_t>(rep) + 1);
    sketcher.push_batch(a);
    const Matrix g = linalg::gram_cols(sketcher.sketch());
    for (std::size_t i = 0; i < 4; ++i) {
      for (std::size_t j = 0; j < 4; ++j) {
        mean(i, j) += g(i, j) / kReps;
      }
    }
  }
  EXPECT_LT(Matrix::max_abs_diff(mean, target),
            0.15 * linalg::frobenius_norm(target));
}

TEST(NormSampling, HeavyRowDominatesSample) {
  Matrix a(30, 2);
  Rng rng(9);
  for (std::size_t i = 0; i < 30; ++i) {
    a(i, 0) = 0.01 * rng.normal();
  }
  a(13, 0) = 100.0;
  NormSamplingSketch sketcher(8, 10);
  sketcher.push_batch(a);
  const Matrix b = sketcher.sketch();
  // Nearly every sampled slot should hold (a rescaled copy of) the heavy
  // row.
  std::size_t heavy = 0;
  for (std::size_t i = 0; i < b.rows(); ++i) {
    if (std::abs(b(i, 0)) > 1.0) ++heavy;
  }
  EXPECT_GE(heavy, b.rows() - 1);
}

TEST(NormSampling, SketchBeforeDataIsEmpty) {
  // Empty-state contract (sketcher.hpp): sketch() on a fresh instance
  // returns an empty matrix, it never throws; basis() is the checked call.
  NormSamplingSketch sketcher(4, 11);
  EXPECT_EQ(sketcher.dim(), 0u);
  EXPECT_EQ(sketcher.sketch().rows(), 0u);
  EXPECT_THROW(sketcher.basis(2), CheckError);
}

TEST(Isvd, ExactOnDataWithinRank) {
  const Matrix a = random_matrix(6, 12, 12);
  TruncatedSvdSketch sketcher(8);
  sketcher.push_batch(a);
  const Matrix b = sketcher.sketch();
  Rng power(13);
  EXPECT_NEAR(linalg::covariance_error(a, b, power, 100), 0.0,
              1e-6 * linalg::frobenius_norm_squared(a));
}

TEST(Isvd, TruncatesWithoutShrinkageUnlikeFd) {
  // The structural difference between iSVD and FD: iSVD keeps the surviving
  // singular values *unchanged* (so the dominant direction's energy is
  // tracked exactly), while FD subtracts δ from every direction at each
  // rotation (so its top singular value is strictly deflated). FD pays that
  // deflation to buy its worst-case guarantee; iSVD has none.
  data::SyntheticConfig dc;
  dc.n = 300;
  dc.d = 24;
  dc.spectrum.kind = data::DecayKind::kExponential;
  dc.spectrum.count = 16;
  dc.spectrum.rate = 0.2;
  Rng rng(14);
  const Matrix a = data::make_low_rank(dc, rng);
  Rng p0(15);
  const double sigma1 = linalg::spectral_norm(a, p0, 150);

  TruncatedSvdSketch isvd(6);
  isvd.push_batch(a);
  FrequentDirections fd(FdConfig{6, true});
  fd.append_batch(a);
  fd.compress();

  Rng p1(16), p2(16);
  const double isvd_top = linalg::spectral_norm(isvd.sketch(), p1, 150);
  const double fd_top = linalg::spectral_norm(fd.sketch(), p2, 150);
  // iSVD tracks σ₁ almost exactly; FD's deflation leaves it visibly lower.
  EXPECT_NEAR(isvd_top, sigma1, 0.02 * sigma1);
  EXPECT_LT(fd_top, isvd_top);
  // And FD still honors its guarantee on the same stream.
  Rng power(17);
  const double fd_err =
      linalg::covariance_error(a, fd.sketch(), power, 100);
  EXPECT_LE(fd_err, linalg::frobenius_norm_squared(a) / 6.0 * 1.001);
}

TEST(Isvd, StatsCountTruncations) {
  TruncatedSvdSketch sketcher(4);
  sketcher.push_batch(random_matrix(50, 6, 16));
  EXPECT_GT(sketcher.stats().svd_count, 0);
  EXPECT_EQ(sketcher.stats().rows_processed, 50);
}

TEST(Baselines, DimensionChangeThrows) {
  for (const char* name : {"gaussian", "countsketch", "normsample", "isvd"}) {
    const auto sketcher = make_sketcher(name, 4, 17);
    const std::vector<double> row3{1.0, 2.0, 3.0};
    const std::vector<double> row2{1.0, 2.0};
    sketcher->append(row3);
    EXPECT_THROW(sketcher->append(row2), CheckError) << name;
  }
}

}  // namespace
}  // namespace arams::core
