// Cross-module invariants: equivariances, determinism, and identities the
// individual unit suites do not cover.

#include <gtest/gtest.h>

#include <cmath>

#include "core/fd.hpp"
#include "core/merge.hpp"
#include "core/priority_sampler.hpp"
#include "data/synthetic.hpp"
#include "embed/pca.hpp"
#include "embed/umap.hpp"
#include "linalg/blas.hpp"
#include "linalg/norms.hpp"
#include "rng/rng.hpp"
#include "stream/pipeline.hpp"
#include "util/check.hpp"

namespace arams {
namespace {

using core::FdConfig;
using core::FrequentDirections;
using linalg::Matrix;

Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  Matrix m(r, c);
  Rng rng(seed);
  for (std::size_t i = 0; i < r; ++i) rng.fill_normal(m.row(i));
  return m;
}

Matrix run_fd(const Matrix& a, std::size_t ell) {
  FrequentDirections fd(FdConfig{ell, true});
  fd.append_batch(a);
  fd.compress();
  return fd.sketch();
}

TEST(FdEquivariance, ScalingCommutesWithSketching) {
  // FD(c·A) = c·FD(A): the rotation is scale-equivariant and δ scales by
  // c², so the shrunk rows scale by c exactly.
  const Matrix a = random_matrix(60, 12, 1);
  constexpr double kScale = 3.5;
  Matrix scaled = a;
  for (std::size_t i = 0; i < scaled.rows(); ++i) {
    linalg::scale(scaled.row(i), kScale);
  }
  const Matrix b1 = run_fd(a, 6);
  Matrix b1_scaled = b1;
  for (std::size_t i = 0; i < b1_scaled.rows(); ++i) {
    linalg::scale(b1_scaled.row(i), kScale);
  }
  const Matrix b2 = run_fd(scaled, 6);
  ASSERT_EQ(b1.rows(), b2.rows());
  // Rows may differ by sign (SVD sign ambiguity); compare Gram matrices,
  // which are sign-invariant.
  const Matrix g1 = linalg::gram_cols(b1_scaled);
  const Matrix g2 = linalg::gram_cols(b2);
  EXPECT_LT(Matrix::max_abs_diff(g1, g2),
            1e-8 * linalg::frobenius_norm(g1));
}

TEST(FdEquivariance, RotationCommutesWithSketchError) {
  // For orthogonal Q: ‖(AQ)ᵀ(AQ) − B_Qᵀ B_Q‖ equals the unrotated error
  // (FD interacts only with singular values).
  const Matrix a = random_matrix(50, 10, 2);
  Rng qrng(3);
  const Matrix q = data::random_orthogonal(10, 10, qrng);
  const Matrix aq = linalg::matmul(a, q);

  const Matrix b = run_fd(a, 5);
  const Matrix bq = run_fd(aq, 5);
  Rng p1(4), p2(4);
  const double err = linalg::covariance_error(a, b, p1, 150);
  const double err_q = linalg::covariance_error(aq, bq, p2, 150);
  EXPECT_NEAR(err, err_q, 1e-6 * std::max(err, 1.0));
}

TEST(FdDeterminism, SameInputSameSketch) {
  const Matrix a = random_matrix(70, 9, 5);
  const Matrix b1 = run_fd(a, 6);
  const Matrix b2 = run_fd(a, 6);
  EXPECT_EQ(Matrix::max_abs_diff(b1, b2), 0.0);
}

TEST(PrioritySampler, SubsetSumEstimatorUnbiased) {
  // Duffield–Lund–Thorup: with the kept sample S and threshold τ,
  // E[Σ_{i∈S} max(wᵢ, τ)] = Σᵢ wᵢ.
  Matrix a(40, 1);
  Rng wrng(6);
  double true_sum = 0.0;
  for (std::size_t i = 0; i < 40; ++i) {
    a(i, 0) = std::abs(wrng.normal()) + 0.05;
    true_sum += a(i, 0) * a(i, 0);  // weight = squared norm
  }
  double mean_estimate = 0.0;
  constexpr int kReps = 2000;
  for (int rep = 0; rep < kReps; ++rep) {
    core::PrioritySamplerConfig config;
    config.capacity = 10;
    config.rescale = false;  // keep raw rows; estimate by hand
    config.seed = static_cast<std::uint64_t>(rep) * 13 + 1;
    core::PrioritySampler sampler(config);
    sampler.push_batch(a);
    const Matrix sample = sampler.take();
    const double tau = sampler.last_threshold();
    double estimate = 0.0;
    for (std::size_t i = 0; i < sample.rows(); ++i) {
      const double w = sample(i, 0) * sample(i, 0);
      estimate += std::max(w, tau);
    }
    mean_estimate += estimate / kReps;
  }
  EXPECT_NEAR(mean_estimate, true_sum, 0.05 * true_sum);
}

TEST(Merge, PairTreeEqualsSerialExactly) {
  // With exactly two sketches, both strategies perform the same single
  // shrink of the same stack — results must be bit-comparable.
  const Matrix s1 = run_fd(random_matrix(30, 8, 7), 5);
  const Matrix s2 = run_fd(random_matrix(30, 8, 8), 5);
  const Matrix serial = core::serial_merge({s1, s2}, 5);
  const Matrix tree = core::tree_merge({s1, s2}, 5);
  EXPECT_EQ(Matrix::max_abs_diff(serial, tree), 0.0);
}

TEST(Merge, HeterogeneousSketchSizesAccepted) {
  // Merging sketches with different row counts (one core saw fewer rows)
  // must work and respect the ℓ bound.
  const Matrix small = random_matrix(2, 8, 9);
  const Matrix large = run_fd(random_matrix(50, 8, 10), 6);
  const Matrix merged = core::merge_group({small, large}, 6);
  EXPECT_LE(merged.rows(), 6u);
  EXPECT_EQ(merged.cols(), 8u);
}

TEST(Merge, OrderIndependenceOfGuarantee) {
  // Merging [s1, s2, s3] in any order keeps the covariance bound against
  // the union (the sketches themselves may differ).
  std::vector<Matrix> shards;
  Matrix full;
  for (int i = 0; i < 3; ++i) {
    Matrix shard = random_matrix(40, 10, 11 + static_cast<unsigned>(i));
    full = Matrix::vstack(full, shard);
    shards.push_back(std::move(shard));
  }
  std::vector<Matrix> sketches;
  for (const auto& s : shards) sketches.push_back(run_fd(s, 8));
  const double bound = linalg::frobenius_norm_squared(full) / 8.0;

  const std::size_t orders[][3] = {{0, 1, 2}, {2, 0, 1}, {1, 2, 0}};
  for (const auto& order : orders) {
    std::vector<Matrix> permuted;
    for (const std::size_t idx : order) permuted.push_back(sketches[idx]);
    const Matrix merged = core::serial_merge(std::move(permuted), 8);
    Rng power(12);
    EXPECT_LE(linalg::covariance_error(full, merged, power, 120),
              2.0 * bound);
  }
}

TEST(Pca, ProjectionOfReconstructionIsIdentity) {
  const Matrix sketch = random_matrix(6, 20, 13);
  const embed::PcaProjector pca(sketch, 4);
  const Matrix z = random_matrix(15, 4, 14);
  const Matrix z2 = pca.project(pca.reconstruct(z));
  EXPECT_LT(Matrix::max_abs_diff(z2, z), 1e-9);
}

TEST(Umap, ThreeComponentEmbeddingWorks) {
  const Matrix pts = random_matrix(60, 6, 15);
  embed::UmapConfig config;
  config.n_neighbors = 10;
  config.n_components = 3;
  config.n_epochs = 80;
  const Matrix y = embed::umap_embed(pts, config);
  EXPECT_EQ(y.cols(), 3u);
}

TEST(Pipeline, FullyDeterministicGivenConfig) {
  const Matrix rows = random_matrix(80, 16, 16);
  stream::PipelineConfig config;
  config.sketch.ell = 10;
  config.num_cores = 2;
  config.pca_components = 6;
  config.umap.n_neighbors = 8;
  config.umap.n_epochs = 60;
  const stream::MonitoringPipeline pipeline(config);
  const auto r1 = pipeline.analyze_matrix(rows);
  const auto r2 = pipeline.analyze_matrix(rows);
  EXPECT_EQ(Matrix::max_abs_diff(r1.embedding, r2.embedding), 0.0);
  EXPECT_EQ(r1.labels, r2.labels);
}

TEST(Pipeline, RowPermutationBoundsError) {
  // Permuting the stream changes the sketch but not its guarantee.
  const Matrix rows = random_matrix(100, 12, 17);
  Matrix reversed(100, 12);
  for (std::size_t i = 0; i < 100; ++i) {
    reversed.set_row(i, rows.row(99 - i));
  }
  const double bound = linalg::frobenius_norm_squared(rows) / 8.0;
  const Matrix* variants[] = {&rows, &reversed};
  for (const Matrix* m : variants) {
    const Matrix b = run_fd(*m, 8);
    Rng power(18);
    EXPECT_LE(linalg::covariance_error(rows, b, power, 120),
              bound * 1.001);
  }
}

}  // namespace
}  // namespace arams
