// Tests for the ImageF container and matrix flattening.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "image/image.hpp"
#include "util/check.hpp"

namespace arams::image {
namespace {

TEST(Image, ZeroInitialized) {
  const ImageF img(4, 6);
  EXPECT_EQ(img.height(), 4u);
  EXPECT_EQ(img.width(), 6u);
  EXPECT_EQ(img.pixel_count(), 24u);
  EXPECT_EQ(img.total_intensity(), 0.0);
  EXPECT_EQ(img.max_intensity(), 0.0);
}

TEST(Image, AtReadWrite) {
  ImageF img(3, 3);
  img.at(1, 2) = 5.5;
  EXPECT_EQ(img.at(1, 2), 5.5);
  EXPECT_EQ(img.at(2, 1), 0.0);
}

TEST(Image, TotalAndMaxIntensity) {
  ImageF img(2, 2);
  img.at(0, 0) = 1.0;
  img.at(1, 1) = 3.0;
  EXPECT_DOUBLE_EQ(img.total_intensity(), 4.0);
  EXPECT_DOUBLE_EQ(img.max_intensity(), 3.0);
}

TEST(Image, RowRoundTrip) {
  ImageF img(2, 3);
  for (std::size_t y = 0; y < 2; ++y) {
    for (std::size_t x = 0; x < 3; ++x) {
      img.at(y, x) = static_cast<double>(y * 3 + x);
    }
  }
  std::vector<double> row(6);
  img.to_row(row);
  const ImageF back = ImageF::from_row(row, 2, 3);
  for (std::size_t y = 0; y < 2; ++y) {
    for (std::size_t x = 0; x < 3; ++x) {
      EXPECT_EQ(back.at(y, x), img.at(y, x));
    }
  }
}

TEST(Image, RowLengthValidation) {
  const ImageF img(2, 3);
  std::vector<double> wrong(5);
  EXPECT_THROW(img.to_row(wrong), CheckError);
  EXPECT_THROW(ImageF::from_row(wrong, 2, 3), CheckError);
}

TEST(Image, BatchToMatrix) {
  std::vector<ImageF> batch(3, ImageF(2, 2));
  batch[1].at(0, 1) = 9.0;
  const linalg::Matrix m = images_to_matrix(batch);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m(1, 1), 9.0);
}

TEST(Image, BatchShapeMismatchThrows) {
  std::vector<ImageF> batch;
  batch.emplace_back(2, 2);
  batch.emplace_back(3, 3);
  EXPECT_THROW(images_to_matrix(batch), CheckError);
}

TEST(Image, EmptyBatchThrows) {
  EXPECT_THROW(images_to_matrix({}), CheckError);
}

TEST(Image, SavePgmWritesHeaderAndPayload) {
  ImageF img(2, 3);
  img.at(0, 0) = 1.0;
  const std::string path = "/tmp/arams_test_image.pgm";
  img.save_pgm(path);
  std::ifstream f(path, std::ios::binary);
  ASSERT_TRUE(f.good());
  std::string magic;
  f >> magic;
  EXPECT_EQ(magic, "P5");
  int w = 0, h = 0, maxval = 0;
  f >> w >> h >> maxval;
  EXPECT_EQ(w, 3);
  EXPECT_EQ(h, 2);
  EXPECT_EQ(maxval, 255);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace arams::image
