// Tests for the ImageF container and matrix flattening.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

#include "image/image.hpp"
#include "util/check.hpp"

namespace arams::image {
namespace {

TEST(Image, ZeroInitialized) {
  const ImageF img(4, 6);
  EXPECT_EQ(img.height(), 4u);
  EXPECT_EQ(img.width(), 6u);
  EXPECT_EQ(img.pixel_count(), 24u);
  EXPECT_EQ(img.total_intensity(), 0.0);
  EXPECT_EQ(img.max_intensity(), 0.0);
}

TEST(Image, AtReadWrite) {
  ImageF img(3, 3);
  img.at(1, 2) = 5.5;
  EXPECT_EQ(img.at(1, 2), 5.5);
  EXPECT_EQ(img.at(2, 1), 0.0);
}

TEST(Image, TotalAndMaxIntensity) {
  ImageF img(2, 2);
  img.at(0, 0) = 1.0;
  img.at(1, 1) = 3.0;
  EXPECT_DOUBLE_EQ(img.total_intensity(), 4.0);
  EXPECT_DOUBLE_EQ(img.max_intensity(), 3.0);
}

TEST(Image, RowRoundTrip) {
  ImageF img(2, 3);
  for (std::size_t y = 0; y < 2; ++y) {
    for (std::size_t x = 0; x < 3; ++x) {
      img.at(y, x) = static_cast<double>(y * 3 + x);
    }
  }
  std::vector<double> row(6);
  img.to_row(row);
  const ImageF back = ImageF::from_row(row, 2, 3);
  for (std::size_t y = 0; y < 2; ++y) {
    for (std::size_t x = 0; x < 3; ++x) {
      EXPECT_EQ(back.at(y, x), img.at(y, x));
    }
  }
}

TEST(Image, RowLengthValidation) {
  const ImageF img(2, 3);
  std::vector<double> wrong(5);
  EXPECT_THROW(img.to_row(wrong), CheckError);
  EXPECT_THROW(ImageF::from_row(wrong, 2, 3), CheckError);
}

TEST(Image, BatchToMatrix) {
  std::vector<ImageF> batch(3, ImageF(2, 2));
  batch[1].at(0, 1) = 9.0;
  const linalg::Matrix m = images_to_matrix(batch);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m(1, 1), 9.0);
}

TEST(Image, BatchShapeMismatchThrows) {
  std::vector<ImageF> batch;
  batch.emplace_back(2, 2);
  batch.emplace_back(3, 3);
  EXPECT_THROW(images_to_matrix(batch), CheckError);
}

TEST(Image, EmptyBatchThrows) {
  EXPECT_THROW(images_to_matrix(std::vector<ImageF>{}), CheckError);
}

TEST(Image, SavePgmWritesHeaderAndPayload) {
  ImageF img(2, 3);
  img.at(0, 0) = 1.0;
  const std::string path = "/tmp/arams_test_image.pgm";
  img.save_pgm(path);
  std::ifstream f(path, std::ios::binary);
  ASSERT_TRUE(f.good());
  std::string magic;
  f >> magic;
  EXPECT_EQ(magic, "P5");
  int w = 0, h = 0, maxval = 0;
  f >> w >> h >> maxval;
  EXPECT_EQ(w, 3);
  EXPECT_EQ(h, 2);
  EXPECT_EQ(maxval, 255);
  std::remove(path.c_str());
}

// ----------------------------------------------- ImageF32 (fp32 ingest)

TEST(ImageF32, NarrowWidenRoundTrip) {
  ImageF img(2, 3);
  img.at(0, 0) = 1.25;   // exact in fp32
  img.at(1, 2) = -0.5;
  const ImageF32 narrow_img = narrow(img);
  EXPECT_EQ(narrow_img.height(), 2u);
  EXPECT_EQ(narrow_img.width(), 3u);
  EXPECT_EQ(narrow_img.at(0, 0), 1.25F);
  const ImageF wide = widen(narrow_img);
  EXPECT_EQ(wide.at(0, 0), 1.25);
  EXPECT_EQ(wide.at(1, 2), -0.5);
}

TEST(ImageF32, IntensityReductionsTrackF64) {
  // The float reductions accumulate in double through independent lanes;
  // against the fp64 serial reference they agree to rounding. Odd pixel
  // count exercises the unrolled kernels' tail loops.
  ImageF img(5, 7);
  double v = 0.0;
  for (auto& p : img.pixels()) {
    v += 0.13;
    p = v;
  }
  const ImageF32 narrow_img = narrow(img);
  EXPECT_NEAR(narrow_img.total_intensity(), img.total_intensity(), 1e-4);
  EXPECT_EQ(narrow_img.max_intensity(),
            static_cast<float>(img.max_intensity()));
}

TEST(ImageF32, IntensityReductionsPropagateNaN) {
  // NaN anywhere must poison total_intensity (the `!(total > 0)` guards
  // downstream depend on it) in every accumulator lane of the unrolled
  // kernel, including the tail.
  for (std::size_t pos : {std::size_t{0}, std::size_t{3}, std::size_t{30}}) {
    ImageF32 img(3, 11);  // 33 pixels: pos 30 lands in the tail loop
    img.pixels()[pos] = std::numeric_limits<float>::quiet_NaN();
    EXPECT_TRUE(std::isnan(img.total_intensity())) << "pos " << pos;
  }
  // max_intensity mirrors std::max_element semantics: NaN is sticky only
  // at index 0 (any other position loses every `>` comparison).
  ImageF32 head(1, 4);
  head.pixels()[0] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(std::isnan(head.max_intensity()));
  ImageF32 body(1, 4);
  body.pixels()[2] = std::numeric_limits<float>::quiet_NaN();
  body.pixels()[1] = 2.0F;
  EXPECT_EQ(body.max_intensity(), 2.0F);
}

TEST(ImageF32, BatchToMatrixIsF32) {
  std::vector<ImageF32> batch(2, ImageF32(2, 2));
  batch[0].at(0, 1) = 3.5F;
  batch[1].at(1, 0) = -1.5F;
  const linalg::MatrixF m = images_to_matrix(batch);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m(0, 1), 3.5F);
  EXPECT_EQ(m(1, 2), -1.5F);
}

}  // namespace
}  // namespace arams::image
